type config = {
  masc : Masc_node.config;
  bgmp : Bgmp_fabric.config;
  maas_block : int;
  seed : int;
  loss : float;
}

let default_config =
  {
    masc = Masc_node.default_config;
    bgmp = Bgmp_fabric.default_config;
    maas_block = 256;
    seed = 1998;
    loss = 0.0;
  }

let quick_config =
  {
    default_config with
    masc =
      {
        Masc_node.default_config with
        Masc_node.claim_wait = Time.minutes 5.0;
        renew_margin = Time.hours 1.0;
      };
  }

type t = {
  cfg : config;
  engine : Engine.t;
  net_topo : Topo.t;
  net_trace : Trace.t;
  net : Net.t;
  bgp_net : Bgp_network.t;
  masc_net : Masc_network.t;
  bgmp_fabric : Bgmp_fabric.t;
  maases : Maas.t array;
  invariants : Invariant.t;
  pending_rebuild : (Ipv4.t, unit) Hashtbl.t;
  mutable seen_violations : Invariant.violation list;
}

let engine t = t.engine

let topo t = t.net_topo

let trace t = t.net_trace

let net t = t.net

let speaker t d = Bgp_network.speaker t.bgp_net d

let masc_node t d = Masc_network.node t.masc_net d

let maas t d = t.maases.(d)

let fabric t = t.bgmp_fabric

let bgp t = t.bgp_net

let masc_network t = t.masc_net

(* Where the path to the group's root leaves [dom], per its G-RIB. *)
let root_route_via bgp_net dom group =
  match Speaker.lookup (Bgp_network.speaker bgp_net dom) group with
  | None -> Bgmp_fabric.Unroutable
  | Some route -> (
      match Route.next_hop route with
      | None -> Bgmp_fabric.Root_here
      | Some nh -> Bgmp_fabric.Via nh)

(* The trace id a group's causal chain runs under: the span of the
   covering G-RIB route (any vantage), else a fresh group id — the same
   rule the fabric applies to joins. *)
let group_trace_id t group =
  let rec scan = function
    | [] -> Span.group_id (Ipv4.to_string group)
    | (d : Domain.t) :: rest -> (
        match Speaker.lookup (Bgp_network.speaker t.bgp_net d.Domain.id) group with
        | Some { Route.span = Some s; _ } -> s.Span.trace_id
        | _ -> scan rest)
  in
  scan (Topo.domains t.net_topo)

let domain_of_router t =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (d : Domain.t) ->
      List.iter
        (fun r -> Hashtbl.replace tbl (Bgmp_router.id r) d.Domain.id)
        (Bgmp_fabric.routers_of t.bgmp_fabric d.Domain.id))
    (Topo.domains t.net_topo);
  fun rid -> Hashtbl.find_opt tbl rid

(* §4: sibling MASC allocations must not overlap once acquired.  An
   arena is one parent's space (its children's Up claims plus its own
   Down reservations) or the top-level mesh. *)
let masc_overlap_violations t () =
  let arenas = Hashtbl.create 8 in
  let add key entry =
    Hashtbl.replace arenas key (entry :: Option.value ~default:[] (Hashtbl.find_opt arenas key))
  in
  List.iter
    (fun id ->
      let node = Masc_network.node t.masc_net id in
      let sibling_key =
        match Masc_node.role node with Masc_node.Top -> None | Masc_node.Child p -> Some p
      in
      List.iter
        (fun (c : Masc_node.own_claim) ->
          if c.Masc_node.claim_state = Masc_node.Acquired then
            match c.Masc_node.claim_arena with
            | Masc_node.Up -> add sibling_key (id, c)
            | Masc_node.Down -> add (Some id) (id, c))
        (Masc_node.all_claims node))
    (Masc_network.ids t.masc_net);
  let cross_node =
    Hashtbl.fold
      (fun _ entries acc ->
        let rec pairs acc = function
          | [] -> acc
          | (a, (ca : Masc_node.own_claim)) :: rest ->
              let acc =
                List.fold_left
                  (fun acc (b, (cb : Masc_node.own_claim)) ->
                    if
                      a <> b && Prefix.overlaps ca.Masc_node.claim_prefix cb.Masc_node.claim_prefix
                    then
                      ( Printf.sprintf
                          "domains %d and %d hold overlapping acquired ranges %s and %s" a b
                          (Prefix.to_string ca.Masc_node.claim_prefix)
                          (Prefix.to_string cb.Masc_node.claim_prefix),
                        Some ca.Masc_node.claim_span.Span.trace_id )
                      :: acc
                    else acc)
                  acc rest
              in
              pairs acc rest
        in
        pairs acc entries)
      arenas []
  in
  (* Each node's own registry must agree: a registered sibling claim
     overlapping one of our acquired ranges means collision resolution
     failed to protect it. *)
  let in_view =
    List.concat_map
      (fun id ->
        let node = Masc_network.node t.masc_net id in
        let view = Masc_node.space_view node in
        List.concat_map
          (fun (c : Masc_node.own_claim) ->
            if c.Masc_node.claim_state = Masc_node.Acquired && c.Masc_node.claim_arena = Masc_node.Up
            then
              List.filter_map
                (fun (p, owner) ->
                  if owner <> id then
                    Some
                      ( Printf.sprintf
                          "domain %d's acquired range %s overlaps %s registered to domain %d" id
                          (Prefix.to_string c.Masc_node.claim_prefix) (Prefix.to_string p) owner,
                        Some c.Masc_node.claim_span.Span.trace_id )
                  else None)
                (Address_space.conflicting view c.Masc_node.claim_prefix)
            else [])
          (Masc_node.all_claims node))
      (Masc_network.ids t.masc_net)
  in
  cross_node @ in_view

(* Every router's (star,G) upstream must agree with the current G-RIB:
   the root domain has no upstream peer, everyone else's upstream peer
   sits in the G-RIB next-hop domain, and tree state for an unroutable
   group is stale.  Only meaningful when no rebuild is pending. *)
let grib_nexthop_violations t () =
  if Hashtbl.length t.pending_rebuild > 0 then []
  else
    let dom_of = domain_of_router t in
    List.concat_map
      (fun group ->
        let tid = Some (group_trace_id t group) in
        let g = Ipv4.to_string group in
        List.concat_map
          (fun d ->
            let rr = root_route_via t.bgp_net d group in
            List.concat_map
              (fun r ->
                match Bgmp_router.star_entry r group with
                | None -> []
                | Some e -> (
                    match (e.Bgmp_router.parent, rr) with
                    | Some (Bgmp_router.Peer p), Bgmp_fabric.Via nh -> (
                        match dom_of p with
                        | Some pd when pd <> nh ->
                            [
                              ( Printf.sprintf
                                  "group %s: domain %d joins upstream via domain %d but its \
                                   G-RIB next hop is %d"
                                  g d pd nh,
                                tid );
                            ]
                        | _ -> [])
                    | Some (Bgmp_router.Peer p), Bgmp_fabric.Root_here ->
                        [
                          ( Printf.sprintf
                              "group %s: root domain %d still has an upstream peer (router %d)" g
                              d p,
                            tid );
                        ]
                    | Some (Bgmp_router.Peer p), Bgmp_fabric.Unroutable ->
                        (* Parentless local state is legitimate for a
                           partitioned member; a live upstream edge for
                           an unroutable group is stale. *)
                        [
                          ( Printf.sprintf
                              "group %s: domain %d keeps upstream peer %d but the group is \
                               unroutable"
                              g d p,
                            tid );
                        ]
                    | _ -> []))
              (Bgmp_fabric.routers_of t.bgmp_fabric d))
          (Bgmp_fabric.tree_domains t.bgmp_fabric ~group))
      (Bgmp_fabric.active_groups t.bgmp_fabric)

let install_invariants t =
  let inv = t.invariants in
  Invariant.register inv ~name:"masc-sibling-overlap" (masc_overlap_violations t);
  Invariant.register inv ~name:"bgmp-acyclic" (fun () ->
      Bgmp_fabric.tree_violations t.bgmp_fabric ~quiescent:false);
  Invariant.register inv ~quiescent_only:true ~name:"bgmp-tree-settled" (fun () ->
      (* tree_violations ~quiescent:true repeats the acyclicity sweep;
         report only the quiescent-only findings under this name. *)
      let base = Bgmp_fabric.tree_violations t.bgmp_fabric ~quiescent:false in
      List.filter
        (fun v -> not (List.mem v base))
        (Bgmp_fabric.tree_violations t.bgmp_fabric ~quiescent:true));
  Invariant.register inv ~quiescent_only:true ~name:"grib-nexthop" (grib_nexthop_violations t)

let check_invariants ?(quiescent = true) t =
  let vs = Invariant.check ~quiescent t.invariants in
  List.iter
    (fun (v : Invariant.violation) ->
      t.seen_violations <- v :: t.seen_violations;
      Trace.record t.net_trace ~time:(Engine.now t.engine) ~actor:"invariant" ~tag:"violation"
        ?trace_id:v.Invariant.trace_id
        (Printf.sprintf "%s: %s" v.Invariant.inv v.Invariant.detail))
    vs;
  vs

let enable_invariant_checks ?(cadence = Time.hours 1.0) t =
  Engine.set_monitor t.engine ~cadence (fun ~quiescent -> ignore (check_invariants ~quiescent t))

(* Telemetry: register the stack's convergence-curve sources on [ts] and
   drive them from the engine's sampler hook, mirroring how invariant
   checks ride the monitor — no events of its own, so sampling never
   changes scheduling order or keeps a drained run alive. *)
let enable_sampling ?(every = Time.minutes 1.0) t ts =
  Timeseries.register ts "engine.pending" (fun () -> float_of_int (Engine.pending t.engine));
  List.iter
    (fun proto ->
      Timeseries.register ts ("net.inflight." ^ proto) (fun () ->
          float_of_int (Net.in_flight t.net ~protocol:proto)))
    [ "masc"; "bgp"; "bgmp" ];
  let domains () = Topo.domains t.net_topo in
  Timeseries.register ts "grib.routes" (fun () ->
      List.fold_left
        (fun acc (d : Domain.t) ->
          acc +. float_of_int (Speaker.grib_size (Bgp_network.speaker t.bgp_net d.Domain.id)))
        0.0 (domains ()));
  Timeseries.register ts "masc.claims_outstanding" (fun () ->
      List.fold_left
        (fun acc id ->
          acc +. float_of_int (List.length (Masc_node.all_claims (Masc_network.node t.masc_net id))))
        0.0
        (Masc_network.ids t.masc_net));
  Timeseries.register ts "bgmp.tree_entries" (fun () ->
      List.fold_left
        (fun acc (d : Domain.t) ->
          List.fold_left
            (fun acc r -> acc +. float_of_int (Bgmp_router.entry_count r))
            acc
            (Bgmp_fabric.routers_of t.bgmp_fabric d.Domain.id))
        0.0 (domains ()));
  Engine.set_sampler t.engine ~every (fun time -> Timeseries.sample ts ~time)

let invariant_violations t = List.rev t.seen_violations

let invariants t = t.invariants

let create ?(config = default_config) ?migp_style net_topo =
  let engine = Engine.create () in
  let rng = Rng.create config.seed in
  let net_trace = Trace.create () in
  (* The one transport under all three protocols: link state (failures,
     partitions, loss) has a single source of truth.  The loss seed is
     decorrelated from the MASC rng (same [config.seed]) so enabling
     loss never replays MASC's claim randomness. *)
  let net =
    Net.create ~engine
      ~config:
        {
          Net.loss_rate = config.loss;
          Net.loss_seed = config.seed lxor 0x6e6574;
          Net.delay_override = None;
        }
      ~trace:net_trace ()
  in
  let bgp_net = Bgp_network.create ~engine ~net ~topo:net_topo () in
  let masc_net =
    Masc_network.of_topo ~engine ~rng ~config:config.masc ~trace:net_trace ~net net_topo
  in
  (* MASC -> BGP glue: acquired ranges become group routes injected at
     their root domain; lost ranges are withdrawn (§4.2).  The route
     carries a child of the claim's acquisition span so G-RIB changes
     and the joins they enable stay on the claim's causal chain. *)
  List.iter
    (fun id ->
      let node = Masc_network.node masc_net id in
      Masc_node.add_on_acquired node (fun prefix ~lifetime_end ~span ->
          Bgp_network.originate ~lifetime_end ~span:(Span.child span) bgp_net id prefix);
      Masc_node.add_on_replaced node (fun ~old_prefix ~by:_ ->
          Bgp_network.withdraw bgp_net id old_prefix);
      Masc_node.add_on_lost node (fun prefix -> Bgp_network.withdraw bgp_net id prefix))
    (Masc_network.ids masc_net);
  (* BGP -> BGMP glue: the G-RIB answers where the root domain lies. *)
  let route_to_root dom group = root_route_via bgp_net dom group in
  let span_of_group dom group =
    Option.bind (Speaker.lookup (Bgp_network.speaker bgp_net dom) group) (fun r ->
        r.Route.span)
  in
  let bgmp_fabric =
    Bgmp_fabric.create ~engine ~topo:net_topo ~net ~config:config.bgmp ?migp_style
      ~trace:net_trace ~span_of_group ~route_to_root ()
  in
  let maases =
    Array.init (Topo.domain_count net_topo) (fun d ->
        Maas.create ~engine ~node:(Masc_network.node masc_net d) ~block_size:config.maas_block)
  in
  (* BGP -> BGMP repair glue: a change to any domain's best route for a
     covering prefix makes the affected groups' trees stale; rebuild
     them under the new routes.  Rebuilds are coalesced per group within
     an engine tick so an update storm triggers one repair. *)
  let pending_rebuild = Hashtbl.create 8 in
  let schedule_rebuild group =
    if not (Hashtbl.mem pending_rebuild group) then begin
      Hashtbl.replace pending_rebuild group ();
      ignore
        (Engine.schedule_after ~label:"core.rebuild" engine Time.zero (fun () ->
             Hashtbl.remove pending_rebuild group;
             Bgmp_fabric.rebuild_group bgmp_fabric ~group))
    end
  in
  List.iter
    (fun (d : Domain.t) ->
      let speaker = Bgp_network.speaker bgp_net d.Domain.id in
      Speaker.set_on_grib_change speaker (fun prefix ->
          (* This replaces the hook Bgp_network installed, so keep its
             convergence watermark. *)
          Engine.note_activity engine "bgp";
          let route =
            List.find_opt (fun (p, _) -> Prefix.equal p prefix) (Speaker.best_routes speaker)
          in
          let span = Option.bind route (fun (_, r) -> Option.map Span.child r.Route.span) in
          Trace.recordf net_trace ~time:(Engine.now engine)
            ~actor:(Printf.sprintf "bgp-%d" d.Domain.id) ~tag:"grib-update" ?span "%a %s"
            Prefix.pp prefix
            (if Option.is_none route then "withdrawn" else "installed");
          List.iter
            (fun group -> if Prefix.mem group prefix then schedule_rebuild group)
            (Bgmp_fabric.active_groups bgmp_fabric)))
    (Topo.domains net_topo);
  let t =
    {
      cfg = config;
      engine;
      net_topo;
      net_trace;
      net;
      bgp_net;
      masc_net;
      bgmp_fabric;
      maases;
      invariants = Invariant.create ();
      pending_rebuild;
      seen_violations = [];
    }
  in
  install_invariants t;
  t

let start t = Masc_network.start t.masc_net

let rebuild_all_groups t =
  List.iter
    (fun group -> Bgmp_fabric.rebuild_group t.bgmp_fabric ~group)
    (Bgmp_fabric.active_groups t.bgmp_fabric)

let fail_link t a b =
  if Topo.link_between t.net_topo a b = None then
    invalid_arg "Internet.fail_link: no such link";
  (* One transport call takes the link down for every protocol at once:
     the BGP sessions drop via the net's link-change listener
     (withdrawals ripple, alternates get selected) and in-flight
     messages of all three protocols are lost. *)
  Net.fail_link t.net a b;
  (* Rebuild once the withdrawals settle; the grib-change hook also
     fires rebuilds during reconvergence, but a group whose routes are
     unaffected can still have tree edges over the dead link. *)
  ignore
    (Engine.schedule_after ~label:"core.rebuild" t.engine (Time.seconds 1.0) (fun () ->
         rebuild_all_groups t))

let restore_link t a b =
  if Topo.link_between t.net_topo a b = None then
    invalid_arg "Internet.restore_link: no such link";
  Net.restore_link t.net a b;
  ignore
    (Engine.schedule_after ~label:"core.rebuild" t.engine (Time.seconds 1.0) (fun () ->
         rebuild_all_groups t))

let run_for t duration = Engine.run ~until:(Engine.now t.engine +. duration) t.engine

(* Above the 48 h collision wait (so graduation storms count as
   activity, not silence), below the ~30 d renewal cycle (so steady
   renewals do not keep the run alive forever). *)
let settle ?(quiet_for = Time.days 7.0) t = Engine.run_until_quiescent ~grace:quiet_for t.engine

let request_address t dom = Maas.allocate t.maases.(dom) ()

let request_address_in t ~initiator ~root =
  let alloc = Maas.allocate t.maases.(root) () in
  (match alloc with
  | Some a ->
      Trace.recordf t.net_trace ~time:(Engine.now t.engine)
        ~actor:(Printf.sprintf "maas-%d" root) ~tag:"remote-alloc" "%a for initiator %d"
        Ipv4.pp a.Maas.address initiator
  | None -> ());
  alloc

let request_address_with_fallback t dom =
  match Maas.allocate t.maases.(dom) () with
  | Some a -> Some (a, dom)
  | None -> (
      match Masc_node.role (Masc_network.node t.masc_net dom) with
      | Masc_node.Top -> None
      | Masc_node.Child parent -> (
          match Maas.allocate t.maases.(parent) () with
          | Some a ->
              Trace.recordf t.net_trace ~time:(Engine.now t.engine)
                ~actor:(Printf.sprintf "maas-%d" dom) ~tag:"fallback-alloc"
                "%a from parent %d" Ipv4.pp a.Maas.address parent;
              Some (a, parent)
          | None -> None))

let release_address t dom alloc = Maas.release t.maases.(dom) alloc

let root_domain_of t group =
  (* Aggregation can hide the most specific route from distant vantage
     points (§4.3.2): a backbone may only carry its own covering range.
     Follow origins — each origin's G-RIB holds the next more-specific
     route — until a domain names itself, which is the root. *)
  let n = Topo.domain_count t.net_topo in
  let rec scan d =
    if d >= n then None
    else
      match Speaker.lookup (Bgp_network.speaker t.bgp_net d) group with
      | Some route -> Some route.Route.origin
      | None -> scan (d + 1)
  in
  let rec follow d depth =
    if depth > n then Some d
    else
      match Speaker.lookup (Bgp_network.speaker t.bgp_net d) group with
      | Some route when route.Route.origin <> d -> follow route.Route.origin (depth + 1)
      | Some _ | None -> Some d
  in
  Option.bind (scan 0) (fun d -> follow d 0)

let join t ~host ~group = Bgmp_fabric.host_join t.bgmp_fabric ~host ~group

let leave t ~host ~group = Bgmp_fabric.host_leave t.bgmp_fabric ~host ~group

let send t ~source ~group = Bgmp_fabric.send t.bgmp_fabric ~source ~group

let deliveries t ~payload = Bgmp_fabric.deliveries t.bgmp_fabric ~payload
