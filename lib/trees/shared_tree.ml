type t = {
  topo : Topo.t;
  tree_root : Domain.id;
  to_root : Spf.paths;  (** shortest paths toward the root, for join walks *)
  tree_parent : int array;  (** next hop toward root on the tree; -1 = none *)
  marked : bool array;
  tree_depth : int array;
  mutable count : int;
  mutable members_rev : Domain.id list;
}

let join t member =
  (* Walk toward the root, collecting the path until an on-tree node. *)
  let rec walk node acc =
    if t.marked.(node) then (node, acc)
    else begin
      match Spf.next_hop_toward t.topo t.to_root node with
      | Some hop -> walk hop (node :: acc)
      | None -> (node, acc)  (* reached the root *)
    end
  in
  if not t.marked.(member) then begin
    let attach, path_rev = walk member [] in
    if not t.marked.(attach) then begin
      (* attach is the root itself, joining for the first time *)
      t.marked.(attach) <- true;
      t.tree_depth.(attach) <- 0;
      t.count <- t.count + 1
    end;
    (* path_rev holds the off-tree nodes nearest-to-attach first. *)
    let rec graft parent nodes =
      match nodes with
      | [] -> ()
      | node :: rest ->
          t.marked.(node) <- true;
          t.tree_parent.(node) <- parent;
          t.tree_depth.(node) <- t.tree_depth.(parent) + 1;
          t.count <- t.count + 1;
          graft node rest
    in
    graft attach path_rev
  end;
  t.members_rev <- member :: t.members_rev

let build ?to_root topo ~root ~members =
  let n = Topo.domain_count topo in
  let to_root =
    match to_root with
    | Some p ->
        if p.Spf.src <> root then invalid_arg "Shared_tree.build: to_root paths not rooted at root";
        p
    | None -> Spf.bfs topo root
  in
  let t =
    {
      topo;
      tree_root = root;
      to_root;
      tree_parent = Array.make n (-1);
      marked = Array.make n false;
      tree_depth = Array.make n 0;
      count = 0;
      members_rev = [];
    }
  in
  (* The root domain is on the tree by definition (§5.2). *)
  t.marked.(root) <- true;
  t.count <- 1;
  List.iter (join t) members;
  t

let root t = t.tree_root

let on_tree t id = t.marked.(id)

let node_count t = t.count

let parent t id =
  if t.marked.(id) && t.tree_parent.(id) >= 0 then Some t.tree_parent.(id) else None

let depth t id =
  if not t.marked.(id) then invalid_arg "Shared_tree.depth: node off tree";
  t.tree_depth.(id)

let tree_distance t a b =
  if not (t.marked.(a) && t.marked.(b)) then
    invalid_arg "Shared_tree.tree_distance: endpoint off tree";
  (* Walk the deeper endpoint up until the two meet (LCA). *)
  let rec climb x y steps =
    if x = y then steps
    else if t.tree_depth.(x) >= t.tree_depth.(y) then climb t.tree_parent.(x) y (steps + 1)
    else climb x t.tree_parent.(y) (steps + 1)
  in
  climb a b 0

let entry_point t ~walk_toward_root sender =
  let rec walk node hops =
    if t.marked.(node) then Some (node, hops)
    else
      match walk_toward_root node with
      | Some hop -> walk hop (hops + 1)
      | None -> None
  in
  Option.map fst (walk sender 0)

let members t = List.rev t.members_rev
