(** The Figure-4 experiment: path-length overhead of unidirectional,
    bidirectional, and hybrid trees relative to shortest-path trees, as
    the number of receivers grows.

    The paper used a 3326-node topology derived from 1998 BGP table
    dumps; we generate a power-law graph of the same scale (see
    DESIGN.md).  For each group size, [trials] independent groups are
    sampled: a random source, receivers drawn without replacement, and
    the root domain placed at the group initiator — the first receiver —
    per §5.1 ("the group initiator's domain is normally also the group's
    root domain").  The RP of the unidirectional tree and the core of
    the bidirectional tree are the same domain, isolating tree shape
    from root placement. *)

type root_placement =
  | Root_at_initiator  (** the paper's default: first receiver's domain *)
  | Root_at_source  (** ablation: the sender's own domain *)
  | Root_random  (** ablation: an unrelated third-party domain *)

type params = {
  nodes : int;  (** 3326 in the paper *)
  attach_degree : int;  (** preferential-attachment edges per new node *)
  group_sizes : int list;
  trials : int;  (** independent groups per size *)
  root_placement : root_placement;
  topology : [ `Power_law | `Transit_stub ];
  check_invariants : bool;
      (** evaluate the ["tree-ratio"] invariant after every trial: all
          ratios vs SPT are >= 1 and every receiver was evaluated;
          default [false] *)
  seed : int;
  telemetry : Timeseries.t option;
      (** when set, one [trees.*] row per series lands in the sink after
          each group-size point (worst ratios so far, trials run), with
          the group size as the time axis; default [None] *)
  jobs : int;
      (** domains running trials concurrently (one task per trial); [0]
          means the {!Par} pool default.  Every trial's randomness is
          drawn up front on the calling domain and every Obs shard is
          folded back in trial order, so results, metrics, profiles and
          telemetry are byte-identical at any job count; default [0] *)
}

val default_params : params
(** 3326 nodes, sizes 1..1000 (log-spaced), 20 trials, root at
    initiator, power-law topology. *)

type point = {
  group_size : int;
  uni_avg : float;
  uni_max : float;
  bi_avg : float;
  bi_max : float;
  hy_avg : float;
  hy_max : float;
}
(** Ratios vs SPT averaged over trials; the [_max] fields average each
    trial's worst receiver (the paper's "max" curves). *)

type result = {
  points : point list;  (** one per group size that fits the topology *)
  worst_uni : float;  (** absolute worst ratio seen across the run *)
  worst_bi : float;
  worst_hy : float;
  invariant_violations : int;
      (** 0 unless [check_invariants]; also counted in
          {!Metrics.default} *)
}

val run : params -> result

val series_of_result : result -> Stats.series list
(** Six printable series, labelled like the paper's legend. *)
