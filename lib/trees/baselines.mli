(** Baseline inter-domain multicast schemes from the paper's related
    work (§6), modelled at the same level as {!Path_eval} so they can
    be compared against BGMP's trees.

    {b HPIM} (Handley, Crowcroft, Wakeman): a hierarchy of rendezvous
    points chosen by hash functions; a receiver joins the lowest-level
    RP, which joins the next level, and so on.  The paper's criticism —
    "as HPIM uses hash functions to choose the next RP at each level,
    the trees can be very bad in the worst case, especially for global
    groups" — is what {!hpim_paths} quantifies: the RP chain is placed
    by hash (here: uniformly at random from the group id), so no level
    has any locality.

    {b HDVMRP} (Thyagarajan, Deering): inter-region flood-and-prune.
    Data follows shortest paths (ratio 1.0 by construction), but the
    initial flood of every new source reaches {e every} boundary
    router, and each boundary router must keep per-source, per-group
    prune state.  {!hdvmrp_costs} reports those overheads next to
    BGMP's, which grow only with the tree. *)

val hpim_paths :
  ?spf:Spf.cache ->
  ?rps:int array ->
  Topo.t ->
  rng:Rng.t ->
  levels:int ->
  source:Domain.id ->
  receivers:Domain.id array ->
  int array
(** Sender→receiver path lengths (inter-domain hops) on an HPIM tree
    with [levels] hash-placed RPs: receivers join RP1; RP1 joins RP2;
    …; the sender forwards to RP1 and data flows along the joined
    structure bidirectionally.  [?spf] supplies a shared SPF cache so
    repeated trials on one topology reuse BFS results.  [?rps] supplies
    the RP chain (length [levels], lowest level first) instead of
    drawing it from [rng] — used when draws are hoisted out of a
    parallel task.
    @raise Invalid_argument if [Array.length rps <> levels]. *)

type hdvmrp_cost = {
  flood_deliveries : int;
      (** domains that receive the initial flood of one source's data
          (all of them, §6: "floods data packets to the boundary routers
          of all regions") *)
  prune_messages : int;  (** prunes sent back by non-member domains *)
  per_router_state : int;
      (** source×group state entries a single boundary router must hold
          for this workload *)
}

val hdvmrp_costs : Topo.t -> senders:int -> groups:int -> members:int -> hdvmrp_cost
(** Overhead of HDVMRP for a workload of [groups] groups, each with
    [senders] active sources and [members] member domains. *)

type comparison_point = {
  cmp_group_size : int;
  hpim_avg : float;
  hpim_max : float;
  bgmp_hybrid_avg : float;
  bgmp_hybrid_max : float;
}

val compare_hpim :
  ?nodes:int ->
  ?levels:int ->
  ?trials:int ->
  ?sizes:int list ->
  ?jobs:int ->
  seed:int ->
  unit ->
  comparison_point list
(** Path-quality comparison of HPIM vs BGMP hybrid trees on the same
    groups over the same power-law topology.  [?jobs] fans the trials
    out over the {!Par} pool (default: the pool's job count); all
    randomness is drawn up front and Obs shards fold back in trial
    order, so output is byte-identical at any job count. *)
