type group = { source : Domain.id; root : Domain.id; receivers : Domain.id array }

type paths = {
  spt : int array;
  unidirectional : int array;
  bidirectional : int array;
  hybrid : int array;
}

let checked_paths what ~src = function
  | Some p ->
      if p.Spf.src <> src then
        invalid_arg (Printf.sprintf "Path_eval.evaluate: %s paths have the wrong source" what);
      Some p
  | None -> None

let evaluate ?from_source ?from_root topo group =
  let { source; root; receivers } = group in
  let from_source =
    match checked_paths "from_source" ~src:source from_source with
    | Some p -> p
    | None -> Spf.bfs topo source
  in
  let from_root =
    match checked_paths "from_root" ~src:root from_root with
    | Some p -> p
    | None -> Spf.bfs topo root
  in
  let tree = Shared_tree.build ~to_root:from_root topo ~root ~members:(Array.to_list receivers) in
  (* Where the sender's data meets the tree: walk from the source toward
     the root (§5.2); every node on that walk leads to the root, which is
     on the tree, so the entry point always exists. *)
  let toward_root node = Spf.next_hop_toward topo from_root node in
  let entry =
    match Shared_tree.entry_point tree ~walk_toward_root:toward_root source with
    | Some e -> e
    | None -> root
  in
  (* Sender hops to the entry point: along its shortest path to the root. *)
  let source_to_entry = Spf.dist from_root source - Spf.dist from_root entry in
  let spt = Array.map (fun r -> Spf.dist from_source r) receivers in
  let unidirectional =
    (* Register/encapsulate to the RP, then down the shared tree. *)
    Array.map
      (fun r -> Spf.dist from_source root + Shared_tree.depth tree r)
      receivers
  in
  let bidir_of r = source_to_entry + Shared_tree.tree_distance tree entry r in
  let bidirectional = Array.map bidir_of receivers in
  let hybrid =
    Array.map
      (fun r ->
        (* The receiver grafts a source-specific branch along its
           shortest path toward the source; the branch stops at the
           first on-tree node, or reaches the source domain itself. *)
        let toward_source node = Spf.next_hop_toward topo from_source node in
        let rec branch_walk node hops =
          if node = source then `Reached_source
          else if Shared_tree.on_tree tree node && hops > 0 then `Met_tree (node, hops)
          else begin
            match toward_source node with
            | Some hop -> branch_walk hop (hops + 1)
            | None -> `Met_tree (node, hops)
          end
        in
        let branch_path =
          match branch_walk r 0 with
          | `Reached_source -> Spf.dist from_source r
          | `Met_tree (meet, hops_to_meet) ->
              source_to_entry + Shared_tree.tree_distance tree entry meet + hops_to_meet
        in
        min (bidir_of r) branch_path)
      receivers
  in
  { spt; unidirectional; bidirectional; hybrid }

type ratio_summary = { avg_ratio : float; max_ratio : float; receivers_counted : int }

let ratios ~baseline tree_paths =
  if Array.length baseline <> Array.length tree_paths then
    invalid_arg "Path_eval.ratios: length mismatch";
  let sum = ref 0.0 and maxr = ref 0.0 and counted = ref 0 in
  Array.iteri
    (fun i base ->
      if base > 0 then begin
        let r = float_of_int tree_paths.(i) /. float_of_int base in
        sum := !sum +. r;
        if r > !maxr then maxr := r;
        incr counted
      end)
    baseline;
  {
    avg_ratio = (if !counted = 0 then 0.0 else !sum /. float_of_int !counted);
    max_ratio = !maxr;
    receivers_counted = !counted;
  }
