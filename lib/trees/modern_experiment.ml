type mode = Incremental | Scratch

type params = {
  domains : int;
  groups : int;
  roots : int;
  events : int;
  link_every : int;
  join_bias : float;
  trials : int;
  seed : int;
  mode : mode;
  jobs : int;
  check_invariants : bool;
  telemetry : Timeseries.t option;
}

let default_params =
  {
    domains = 2000;
    groups = 200;
    roots = 8;
    events = 4000;
    link_every = 500;
    join_bias = 0.55;
    trials = 2;
    seed = 1998;
    mode = Incremental;
    jobs = 0;
    check_invariants = false;
    telemetry = None;
  }

type checkpoint = {
  ck_events : int;
  ck_members : float;
  ck_entries : float;
  ck_max_router : float;
  ck_stateful : float;
  ck_grib : float;
}

type result = {
  r_domains : int;
  r_links : int;
  checkpoints : checkpoint list;
  joins : int;
  leaves : int;
  skipped : int;
  link_events : int;
  repairs : int;
  touched : int;
  invariant_violations : int;
  spf_seconds : float;
  spf_bytes : float;
}

(* The same transit-stub shape solver as [Tree_experiment]: 8 backbones,
   11 stubs per regional, regionals sized to land near the target. *)
let make_topology ~rng ~domains =
  let backbones = 8 in
  let regionals = max 1 (domains / (backbones * 12)) in
  Gen.transit_stub ~rng ~backbones ~regionals_per_backbone:regionals ~stubs_per_regional:11

(* What one trial reports back.  Everything is an int (or a sum of
   ints) drawn from the trial's own (seed, trial) streams, so the
   reduce is byte-identical at any job count; the two float fields are
   timing/allocation telemetry that never reaches stdout. *)
type trial_out = {
  o_live : int array;  (* per checkpoint *)
  o_entries : int array;
  o_maxr : int array;
  o_stateful : int array;
  o_grib : int array;
  o_joins : int;
  o_leaves : int;
  o_skipped : int;
  o_linkev : int;
  o_repairs : int;
  o_touched : int;
  o_violations : int;
  o_spf_s : float;
  o_spf_b : float;
}

let run p =
  if p.roots < 1 then invalid_arg "Modern_experiment: need at least one root";
  if p.trials < 1 then invalid_arg "Modern_experiment: need at least one trial";
  let rng = Rng.create p.seed in
  let topo = Prof.span "fig4m.topology" (fun () -> make_topology ~rng ~domains:p.domains) in
  let n = Topo.domain_count topo in
  let csr = Topo.freeze topo in
  let nlinks = Array.length csr.Topo.linkv in
  let nroots = min p.roots n in
  let roots_arr = Array.init nroots (fun i -> i * n / nroots) in
  (* Link churn toggles peer links: provider chains stay up, so stubs
     keep a route to their own cone while transit diversity flaps. *)
  let cands =
    let acc = ref [] in
    Array.iteri
      (fun lid l -> if l.Topo.rel = Topo.Peer then acc := (lid, l.Topo.a, l.Topo.b) :: !acc)
      csr.Topo.linkv;
    Array.of_list (List.rev !acc)
  in
  let cks =
    if p.events <= 0 then [||]
    else begin
      let raw = Array.init 10 (fun k -> p.events * (k + 1) / 10) in
      let out = ref [] in
      Array.iter (fun e -> if e > 0 && (match !out with x :: _ -> x <> e | [] -> true) then out := e :: !out) raw;
      Array.of_list (List.rev !out)
    end
  in
  let ncks = Array.length cks in
  let run_trial ws trial =
    let churn =
      Membership.group_churn ~seed:p.seed ~shard:trial ~domains:n ~groups:p.groups
        ~join_bias:p.join_bias ~events:p.events ()
    in
    let lrng = Rng.create (p.seed lxor ((trial + 1) * 0x51ED2705)) in
    let arena = Tree_arena.create ~initial:1024 ~domains:n () in
    let grib = Grib_arena.create ~initial:256 ~domains:n () in
    let handles = Array.make (max 1 p.events) (-1) in
    (* Mode plumbing: both serve the same maintained-tree queries; they
       differ only in what a link toggle costs. *)
    let cache = Spf.make_cache_csr ~ws csr in
    let scratch_alive = if p.mode = Scratch then Array.make (max 1 nlinks) true else [||] in
    let scratch_trees : Spf.paths option array =
      if p.mode = Scratch then Array.make n None else [||]
    in
    let get_tree root =
      match p.mode with
      | Incremental -> Spf.bfs_cached cache root
      | Scratch -> (
          match scratch_trees.(root) with
          | Some t -> t
          | None ->
              let t = Spf.bfs_csr ~ws ~alive:scratch_alive csr root in
              scratch_trees.(root) <- Some t;
              t)
    in
    let spf_s = ref 0.0 and spf_b = ref 0.0 in
    let apply_toggle lid a b up =
      let t0 = Sys.time () in
      let b0 = Gc.allocated_bytes () in
      (match p.mode with
      | Incremental -> Spf.cache_note_link cache ~a ~b ~up
      | Scratch ->
          scratch_alive.(lid) <- up;
          (* the retired pattern: invalidate everything, recompute every
             tree anyone is using *)
          Array.iteri
            (fun r t ->
              match t with
              | Some _ -> scratch_trees.(r) <- Some (Spf.bfs_csr ~ws ~alive:scratch_alive csr r)
              | None -> ())
            scratch_trees);
      spf_s := !spf_s +. (Sys.time () -. t0);
      spf_b := !spf_b +. (Gc.allocated_bytes () -. b0)
    in
    let cand_up = Array.make (max 1 (Array.length cands)) true in
    let joins = ref 0 and leaves = ref 0 and skipped = ref 0 and linkev = ref 0 in
    let live = ref 0 in
    let o_live = Array.make ncks 0
    and o_entries = Array.make ncks 0
    and o_maxr = Array.make ncks 0
    and o_stateful = Array.make ncks 0
    and o_grib = Array.make ncks 0 in
    let next_ck = ref 0 in
    let buf = ref (Array.make 64 0) in
    (* Per-trial sanity predicates over the arena state, counted into
       the trial's shard (same reason each trial owns its SPF cache):
       the arena's global entry counter must agree with the per-router
       sum, live memberships must balance joins minus leaves, and the
       G-RIB can only grow (this experiment never withdraws a
       group-range route) up to its (root-range x router) ceiling. *)
    let invariants = Invariant.create () in
    let pending = ref [] in
    Invariant.register invariants ~name:"state-accounting" (fun () -> !pending);
    let prev_grib = ref 0 in
    let flag fmt = Printf.ksprintf (fun s -> pending := (s, None) :: !pending) fmt in
    let sample () =
      let k = !next_ck in
      o_live.(k) <- !live;
      o_entries.(k) <- Tree_arena.entries arena;
      o_grib.(k) <- Grib_arena.entries grib;
      let mx = ref 0 and st = ref 0 and tot = ref 0 in
      for v = 0 to n - 1 do
        let e = Tree_arena.node_entries arena v in
        tot := !tot + e;
        if e > 0 then incr st;
        if e > !mx then mx := e
      done;
      o_maxr.(k) <- !mx;
      o_stateful.(k) <- !st;
      if p.check_invariants then begin
        if !tot <> o_entries.(k) then
          flag "checkpoint %d: arena counter %d <> per-router sum %d" cks.(k) o_entries.(k) !tot;
        if !live <> !joins - !leaves then
          flag "checkpoint %d: %d live members <> %d joins - %d leaves" cks.(k) !live !joins
            !leaves;
        if !live = 0 && o_entries.(k) <> 0 then
          flag "checkpoint %d: %d forwarding entries left with no live member" cks.(k)
            o_entries.(k);
        if o_grib.(k) < !prev_grib then
          flag "checkpoint %d: G-RIB shrank %d -> %d (routes are never withdrawn)" cks.(k)
            !prev_grib o_grib.(k);
        if o_grib.(k) > nroots * n then
          flag "checkpoint %d: G-RIB %d exceeds %d ranges x %d routers" cks.(k) o_grib.(k) nroots
            n;
        prev_grib := o_grib.(k)
      end;
      next_ck := k + 1
    in
    Array.iteri
      (fun i ev ->
        (if ev.Membership.join then begin
           let ri = ev.Membership.group mod nroots in
           let root = roots_arr.(ri) in
           let tree = get_tree root in
           let m = ev.Membership.node in
           if tree.Spf.dist.(m) = max_int then incr skipped
           else begin
             let len = tree.Spf.dist.(m) + 1 in
             if len > Array.length !buf then buf := Array.make (2 * len) 0;
             let v = ref m in
             for j = 0 to len - 1 do
               !buf.(j) <- !v;
               (* install the group-range route the first time any
                  member's state touches this router *)
               if not (Grib_arena.mem grib ~group:ri ~node:!v) then
                 Grib_arena.set grib ~group:ri ~node:!v tree.Spf.via.(!v);
               v := tree.Spf.via.(!v)
             done;
             let path = Array.sub !buf 0 len in
             handles.(ev.Membership.seq) <- Tree_arena.join arena ~group:ev.Membership.group ~path;
             incr joins;
             incr live
           end
         end
         else begin
           let h = handles.(ev.Membership.join_ref) in
           if h >= 0 then begin
             Tree_arena.leave arena ~group:ev.Membership.group h;
             handles.(ev.Membership.join_ref) <- -1;
             incr leaves;
             decr live
           end
         end);
        (if p.link_every > 0 && Array.length cands > 0 && (i + 1) mod p.link_every = 0 then begin
           let j = Rng.int lrng (Array.length cands) in
           let lid, a, b = cands.(j) in
           let up = not cand_up.(j) in
           cand_up.(j) <- up;
           apply_toggle lid a b up;
           incr linkev
         end);
        if !next_ck < ncks && i + 1 = cks.(!next_ck) then sample ())
      churn;
    let repairs, touched =
      match p.mode with Incremental -> Spf.cache_repair_stats cache | Scratch -> (0, 0)
    in
    let violations =
      if p.check_invariants then List.length (Invariant.check ~quiescent:false invariants) else 0
    in
    {
      o_live;
      o_entries;
      o_maxr;
      o_stateful;
      o_grib;
      o_joins = !joins;
      o_leaves = !leaves;
      o_skipped = !skipped;
      o_linkev = !linkev;
      o_repairs = repairs;
      o_touched = touched;
      o_violations = violations;
      o_spf_s = !spf_s;
      o_spf_b = !spf_b;
    }
  in
  let jobs = if p.jobs = 0 then None else Some p.jobs in
  let trial_ids = List.init p.trials (fun t -> t) in
  let outs =
    Par.map_with ?jobs
      ~init:(fun () -> Spf.make_workspace csr)
      (fun ws trial ->
        Par.with_shard (fun () -> Prof.span "fig4m.trial" (fun () -> run_trial ws trial)))
      trial_ids
  in
  (* Reduce in trial order: shard folding and float accumulation are
     scheduling-independent. *)
  let joins = ref 0
  and leaves = ref 0
  and skipped = ref 0
  and linkev = ref 0
  and repairs = ref 0
  and touched = ref 0
  and violations = ref 0 in
  let spf_s = ref 0.0 and spf_b = ref 0.0 in
  let sum_live = Array.make ncks 0
  and sum_entries = Array.make ncks 0
  and sum_maxr = Array.make ncks 0
  and sum_stateful = Array.make ncks 0
  and sum_grib = Array.make ncks 0 in
  List.iter
    (fun (o, shard) ->
      Par.merge_shard shard;
      joins := !joins + o.o_joins;
      leaves := !leaves + o.o_leaves;
      skipped := !skipped + o.o_skipped;
      linkev := !linkev + o.o_linkev;
      repairs := !repairs + o.o_repairs;
      touched := !touched + o.o_touched;
      violations := !violations + o.o_violations;
      spf_s := !spf_s +. o.o_spf_s;
      spf_b := !spf_b +. o.o_spf_b;
      for k = 0 to ncks - 1 do
        sum_live.(k) <- sum_live.(k) + o.o_live.(k);
        sum_entries.(k) <- sum_entries.(k) + o.o_entries.(k);
        sum_maxr.(k) <- sum_maxr.(k) + o.o_maxr.(k);
        sum_stateful.(k) <- sum_stateful.(k) + o.o_stateful.(k);
        sum_grib.(k) <- sum_grib.(k) + o.o_grib.(k)
      done)
    outs;
  let t = float_of_int p.trials in
  let checkpoints =
    List.init ncks (fun k ->
        {
          ck_events = cks.(k);
          ck_members = float_of_int sum_live.(k) /. t;
          ck_entries = float_of_int sum_entries.(k) /. t;
          ck_max_router = float_of_int sum_maxr.(k) /. t;
          ck_stateful = float_of_int sum_stateful.(k) /. t;
          ck_grib = float_of_int sum_grib.(k) /. t;
        })
  in
  (* Telemetry fires on the main domain after the in-order reduce, one
     row per checkpoint with the membership-event count as the time
     axis (this experiment has no engine), so the series is
     byte-identical at any job count. *)
  (match p.telemetry with
  | Some ts ->
      let cur = ref None in
      let get f = match !cur with Some ck -> f ck | None -> 0.0 in
      Timeseries.register ts "fig4m.members" (fun () -> get (fun ck -> ck.ck_members));
      Timeseries.register ts "fig4m.entries" (fun () -> get (fun ck -> ck.ck_entries));
      Timeseries.register ts "fig4m.max_router" (fun () -> get (fun ck -> ck.ck_max_router));
      Timeseries.register ts "fig4m.stateful" (fun () -> get (fun ck -> ck.ck_stateful));
      Timeseries.register ts "fig4m.grib" (fun () -> get (fun ck -> ck.ck_grib));
      List.iter
        (fun ck ->
          cur := Some ck;
          Timeseries.sample ts ~time:(float_of_int ck.ck_events))
        checkpoints
  | None -> ());
  {
    r_domains = n;
    r_links = nlinks;
    checkpoints;
    joins = !joins;
    leaves = !leaves;
    skipped = !skipped;
    link_events = !linkev;
    repairs = !repairs;
    touched = !touched;
    invariant_violations = !violations;
    spf_seconds = !spf_s;
    spf_bytes = !spf_b;
  }

let pp_summary ppf r =
  Format.fprintf ppf "--- fig4-modern state vs members ---@.";
  Format.fprintf ppf "%8s %10s %12s %9s %9s %10s@." "events" "members" "entries" "max/rtr"
    "routers" "grib";
  List.iter
    (fun ck ->
      Format.fprintf ppf "%8d %10.1f %12.1f %9.1f %9.1f %10.1f@." ck.ck_events ck.ck_members
        ck.ck_entries ck.ck_max_router ck.ck_stateful ck.ck_grib)
    r.checkpoints;
  Format.fprintf ppf
    "totals: %d joins, %d leaves, %d unreachable, %d link events, %d repairs touching %d labels@."
    r.joins r.leaves r.skipped r.link_events r.repairs r.touched
