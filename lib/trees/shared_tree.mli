(** A shared multicast distribution tree over the domain graph, built the
    way BGMP/CBT build them: each member's join message walks the
    shortest path toward the root domain and stops at the first router
    already on the tree (§5.1–5.2).

    Join order matters (later members attach to whatever tree the earlier
    members formed), which is exactly why shared trees have longer paths
    than source trees — the effect Figure 4 quantifies. *)

type t

val build : ?to_root:Spf.paths -> Topo.t -> root:Domain.id -> members:Domain.id list -> t
(** Build by incremental joins in list order.  The root is always on the
    tree.  [?to_root] supplies a precomputed [Spf.bfs topo root] (e.g.
    from an {!Spf.cache}) so harnesses evaluating many trees on one
    topology skip the per-build BFS; it must be rooted at [root] or
    [Invalid_argument] is raised. *)

val join : t -> Domain.id -> unit
(** Add one more member (its join path is grafted). *)

val root : t -> Domain.id

val on_tree : t -> Domain.id -> bool

val node_count : t -> int
(** Number of on-tree domains (members plus transit). *)

val parent : t -> Domain.id -> Domain.id option
(** Next hop toward the root along the tree; [None] at the root (or for
    off-tree nodes). *)

val depth : t -> Domain.id -> int
(** Tree hop count to the root.  @raise Invalid_argument off tree. *)

val tree_distance : t -> Domain.id -> Domain.id -> int
(** Hops along the (unique) tree path between two on-tree domains —
    the path bidirectional data actually takes.
    @raise Invalid_argument when either endpoint is off the tree. *)

val entry_point : t -> walk_toward_root:(Domain.id -> Domain.id option) -> Domain.id -> Domain.id option
(** Where data from an off-tree sender first meets the tree: follow
    [walk_toward_root] next-hops from the sender until an on-tree domain
    appears ([§5.2]: "it simply forwards the packets to the next hop
    towards the root domain").  Returns [None] if the walk dead-ends
    before reaching the tree (cannot happen when the walk leads to the
    root).  If the sender is on the tree, it is its own entry point. *)

val members : t -> Domain.id list
(** Domains that explicitly joined, in join order. *)
