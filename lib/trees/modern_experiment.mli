(** The `fig4-modern' experiment: the paper's state-vs-members study
    rescaled to today's AS graph.

    Figure 4 measured tree quality on a 3326-node 1998 snapshot; ROADMAP
    item 2 asks what per-router state looks like at ~75k domains and
    10⁵ groups.  Each trial drives a deterministic join/leave stream
    ({!Membership.group_churn}) plus periodic link failures/restores
    over a transit-stub topology, installs member paths into
    arena-backed state ({!Tree_arena} forwarding entries, {!Grib_arena}
    group-range next hops), and samples per-router state at fixed
    checkpoints.  Routing is served from a maintained {!Spf.cache}
    repaired in place on every link event ({!Incremental}) or, as the
    retired baseline kept for comparison, recomputed from scratch
    ({!Scratch}).

    Trials run in parallel via [Par.map]; every printed number is
    byte-identical at any [--jobs] because each trial draws its own
    [(seed, trial)] streams and reduces in trial order. *)

type mode = Incremental | Scratch

type params = {
  domains : int;  (** target domain count; the transit-stub shape solver
                      lands as close under it as the family allows *)
  groups : int;  (** dense group-id space per trial *)
  roots : int;  (** distinct root domains; group [g] roots at
                    [g mod roots] *)
  events : int;  (** membership events per trial *)
  link_every : int;  (** one link toggle (fail or restore of a random
                         peer link) per this many membership events;
                         [0] disables link churn *)
  join_bias : float;  (** probability an event is a join *)
  trials : int;
  seed : int;
  mode : mode;
  jobs : int;  (** 0 = the [Par] default *)
  check_invariants : bool;
      (** evaluate the per-trial state-accounting predicates at every
          checkpoint (arena counter vs per-router sum, join/leave
          balance, G-RIB monotonicity and ceiling); violations are
          counted into each trial's shard and summed into
          [invariant_violations] *)
  telemetry : Timeseries.t option;
      (** when set, one telemetry row per checkpoint (members, entries,
          max/router, stateful routers, G-RIB) is sampled on the main
          domain after the in-order reduce, with the membership-event
          count as the time axis *)
}

val default_params : params
(** Small enough for tests and smoke benches: 2000-domain target, 200
    groups, 8 roots, 4000 events, a link toggle every 500, 2 trials,
    seed 1998, [Incremental]. *)

type checkpoint = {
  ck_events : int;  (** membership events processed at this sample *)
  ck_members : float;  (** live memberships (mean across trials) *)
  ck_entries : float;  (** live (group, router) forwarding entries *)
  ck_max_router : float;  (** largest single-router entry count *)
  ck_stateful : float;  (** routers holding any forwarding state *)
  ck_grib : float;  (** (group-range, router) G-RIB entries *)
}

type result = {
  r_domains : int;  (** actual domain count of the generated topology *)
  r_links : int;
  checkpoints : checkpoint list;
  joins : int;  (** members installed, summed across trials *)
  leaves : int;
  skipped : int;  (** joins dropped because no path existed (churn had
                      partitioned the member from the root) *)
  link_events : int;
  repairs : int;  (** incremental repair passes ([0] under {!Scratch}) *)
  touched : int;  (** labels rewritten by those repairs *)
  invariant_violations : int;
      (** state-accounting violations across all trials ([0] unless
          [check_invariants]) *)
  spf_seconds : float;
      (** wall time spent keeping root trees valid under link churn —
          repairs ({!Incremental}) or full recomputes ({!Scratch}).
          Timing, not printed by the CLI: goldens stay deterministic. *)
  spf_bytes : float;  (** GC bytes allocated doing the same *)
}

val run : params -> result

val pp_summary : Format.formatter -> result -> unit
(** The deterministic state-vs-members table ([spf_seconds]/[spf_bytes]
    excluded). *)
