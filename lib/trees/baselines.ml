let hpim_paths ?spf ?rps topo ~rng ~levels ~source ~receivers =
  if levels < 1 then invalid_arg "Baselines.hpim_paths: need at least one RP level";
  let bfs src = match spf with Some c -> Spf.bfs_cached c src | None -> Spf.bfs topo src in
  let n = Topo.domain_count topo in
  (* Hash-placed RPs: no locality by construction (the paper's point). *)
  let rps =
    match rps with Some a -> a | None -> Array.init levels (fun _ -> Rng.int rng n)
  in
  if Array.length rps <> levels then invalid_arg "Baselines.hpim_paths: wrong RP count";
  (* The joined structure: a shared tree rooted at the top RP; the lower
     RPs join it in order, then the receivers join toward the LOWEST RP.
     A receiver's join walks toward RP1 and grafts where it meets the
     structure, mirroring HPIM's explicit-join behaviour. *)
  let top = rps.(levels - 1) in
  let tree = Shared_tree.build ~to_root:(bfs top) topo ~root:top ~members:[] in
  (* Chain the RPs bottom-up: each joins the structure. *)
  for i = levels - 2 downto 0 do
    Shared_tree.join tree rps.(i)
  done;
  let rp1 = rps.(0) in
  (* Receivers join toward RP1: walk the shortest path to RP1, stopping
     at the first on-structure node.  Shared_tree joins walk toward the
     tree ROOT, so emulate the RP1-directed walk explicitly. *)
  let to_rp1 = bfs rp1 in
  Array.iter
    (fun r ->
      let rec walk node acc =
        if Shared_tree.on_tree tree node then List.iter (Shared_tree.join tree) (List.rev acc)
        else
          match Spf.next_hop_toward topo to_rp1 node with
          | Some hop -> walk hop (node :: acc)
          | None -> List.iter (Shared_tree.join tree) (List.rev acc)
      in
      (* Join the path nodes nearest-the-structure first so the graft
         follows the receiver's RP1 path, then the receiver itself. *)
      walk r [];
      Shared_tree.join tree r)
    receivers;
  (* The sender forwards toward RP1 until it meets the structure; data
     then flows bidirectionally along the joined edges. *)
  let entry =
    let rec walk node =
      if Shared_tree.on_tree tree node then node
      else
        match Spf.next_hop_toward topo to_rp1 node with
        | Some hop -> walk hop
        | None -> node
    in
    walk source
  in
  let from_rp1_dist node = Spf.dist to_rp1 node in
  let source_to_entry = abs (from_rp1_dist source - from_rp1_dist entry) in
  Array.map (fun r -> source_to_entry + Shared_tree.tree_distance tree entry r) receivers

type hdvmrp_cost = { flood_deliveries : int; prune_messages : int; per_router_state : int }

let hdvmrp_costs topo ~senders ~groups ~members =
  let n = Topo.domain_count topo in
  if members > n then invalid_arg "Baselines.hdvmrp_costs: more members than domains";
  {
    (* Every new source's data is flooded to every region's boundary
       routers before prunes take effect. *)
    flood_deliveries = senders * groups * n;
    (* Every domain without members prunes, per source and group. *)
    prune_messages = senders * groups * (n - members);
    (* "each boundary router must maintain state for each source sending
       to each group" (§6). *)
    per_router_state = senders * groups;
  }

type comparison_point = {
  cmp_group_size : int;
  hpim_avg : float;
  hpim_max : float;
  bgmp_hybrid_avg : float;
  bgmp_hybrid_max : float;
}

(* One trial's draws, taken on the main domain in exactly the order
   the old sequential loop took them (source, receivers, then the RP
   chain inside [hpim_paths]), so results are byte-identical at any
   job count — and to the sequential runs predating the Par layer. *)
type hpim_spec = { hs_source : Domain.id; hs_receivers : Domain.id array; hs_rps : int array }

let compare_hpim ?(nodes = 1000) ?(levels = 3) ?(trials = 15) ?(sizes = [ 10; 100; 500 ])
    ?jobs ~seed () =
  let rng = Rng.create seed in
  let topo = Gen.power_law ~rng ~n:nodes ~m:2 in
  let csr = Topo.freeze topo in
  let specs = ref [] in
  List.iter
    (fun size ->
      for _ = 1 to trials do
        let source = Rng.int rng nodes in
        let receivers =
          Array.of_list
            (List.filter
               (fun d -> d <> source)
               (Array.to_list (Rng.sample_without_replacement rng (size + 1) nodes)))
        in
        let receivers = Array.sub receivers 0 (min size (Array.length receivers)) in
        let rps = Array.init levels (fun _ -> Rng.int rng nodes) in
        specs := { hs_source = source; hs_receivers = receivers; hs_rps = rps } :: !specs
      done)
    sizes;
  let specs = List.rev !specs in
  (* One task per trial; per-task SPF cache over the worker slot's
     reusable workspace, so spf.* counts are scheduling-independent. *)
  let run_trial ws { hs_source = source; hs_receivers = receivers; hs_rps = rps } =
    let spf = Spf.make_cache_csr ~ws csr in
    let spt = Spf.bfs_cached spf source in
    let baseline = Array.map (fun r -> Spf.dist spt r) receivers in
    let hpim = hpim_paths ~spf ~rps topo ~rng ~levels ~source ~receivers in
    let bgmp =
      (Path_eval.evaluate ~from_source:spt
         ~from_root:(Spf.bfs_cached spf receivers.(0))
         topo
         { Path_eval.source; root = receivers.(0); receivers })
        .Path_eval.hybrid
    in
    let summarize paths =
      let s = Path_eval.ratios ~baseline paths in
      if s.Path_eval.receivers_counted > 0 then
        Some (s.Path_eval.avg_ratio, s.Path_eval.max_ratio)
      else None
    in
    (summarize hpim, summarize bgmp)
  in
  let outs =
    Par.map_with ?jobs
      ~init:(fun () -> Spf.make_workspace csr)
      (fun ws spec -> Par.with_shard (fun () -> run_trial ws spec))
      specs
  in
  let outs = Array.of_list outs in
  let idx = ref 0 in
  List.map
    (fun size ->
      let ha = Stats.create () and hm = Stats.create () in
      let ba = Stats.create () and bm = Stats.create () in
      for _ = 1 to trials do
        let (hpim, bgmp), shard = outs.(!idx) in
        incr idx;
        Par.merge_shard shard;
        let record stats_avg stats_max = function
          | Some (avg, mx) ->
              Stats.add stats_avg avg;
              Stats.add stats_max mx
          | None -> ()
        in
        record ha hm hpim;
        record ba bm bgmp
      done;
      {
        cmp_group_size = size;
        hpim_avg = Stats.mean ha;
        hpim_max = Stats.mean hm;
        bgmp_hybrid_avg = Stats.mean ba;
        bgmp_hybrid_max = Stats.mean bm;
      })
    sizes
