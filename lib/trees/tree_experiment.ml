type root_placement = Root_at_initiator | Root_at_source | Root_random

let m_trials = Metrics.counter "trees.trials_run"
let m_worst_uni = Metrics.gauge "trees.worst_uni"
let m_worst_bi = Metrics.gauge "trees.worst_bi"
let m_worst_hy = Metrics.gauge "trees.worst_hy"

type params = {
  nodes : int;
  attach_degree : int;
  group_sizes : int list;
  trials : int;
  root_placement : root_placement;
  topology : [ `Power_law | `Transit_stub ];
  check_invariants : bool;
  seed : int;
  telemetry : Timeseries.t option;
}

let default_params =
  {
    nodes = 3326;
    attach_degree = 2;
    group_sizes = [ 1; 2; 5; 10; 20; 50; 100; 200; 500; 1000 ];
    trials = 20;
    root_placement = Root_at_initiator;
    topology = `Power_law;
    check_invariants = false;
    seed = 1998;
    telemetry = None;
  }

type point = {
  group_size : int;
  uni_avg : float;
  uni_max : float;
  bi_avg : float;
  bi_max : float;
  hy_avg : float;
  hy_max : float;
}

type result = {
  points : point list;
  worst_uni : float;
  worst_bi : float;
  worst_hy : float;
  invariant_violations : int;
}

let make_topology p rng =
  match p.topology with
  | `Power_law -> Gen.power_law ~rng ~n:p.nodes ~m:p.attach_degree
  | `Transit_stub ->
      (* Sized to land near [p.nodes] total domains. *)
      let backbones = 8 in
      let regionals = max 1 (p.nodes / (backbones * 12)) in
      let stubs = 11 in
      Gen.transit_stub ~rng ~backbones ~regionals_per_backbone:regionals
        ~stubs_per_regional:stubs

let run p =
  let rng = Rng.create p.seed in
  let topo = Prof.span "fig4.topology" (fun () -> make_topology p rng) in
  let n = Topo.domain_count topo in
  (* One SPF cache for the whole run: the root BFS each trial needs twice
     (tree build + path eval) is computed once, and sources/roots redrawn
     across trials or group sizes are never recomputed. *)
  let spf = Spf.make_cache topo in
  let worst_uni = ref 0.0 and worst_bi = ref 0.0 and worst_hy = ref 0.0 in
  (match p.telemetry with
  | Some ts ->
      (* The fig4 run has no engine; the series' time axis is the group
         size just finished, one row per point. *)
      Timeseries.register ts "trees.worst_uni" (fun () -> !worst_uni);
      Timeseries.register ts "trees.worst_bi" (fun () -> !worst_bi);
      Timeseries.register ts "trees.worst_hy" (fun () -> !worst_hy);
      Timeseries.register ts "trees.trials_run" (fun () ->
          float_of_int (Metrics.count m_trials))
  | None -> ());
  (* Per-trial sanity predicates: a tree path can never beat the
     shortest path (every ratio >= 1), and every receiver must be
     reachable and evaluated.  The trial fills [pending]; the registered
     check drains it so detections land in the shared metrics. *)
  let invariants = Invariant.create () in
  let pending = ref [] in
  let violations = ref 0 in
  Invariant.register invariants ~name:"tree-ratio" (fun () -> !pending);
  let points =
    (* Group sizes are capped by the topology: at most n-1 receivers. *)
    let sizes = List.filter (fun s -> s <= n - 2) p.group_sizes in
    List.map
      (fun size ->
        let ua = Stats.create () and um = Stats.create () in
        let ba = Stats.create () and bm = Stats.create () in
        let ha = Stats.create () and hm = Stats.create () in
        Prof.span "fig4.point" @@ fun () ->
        for _ = 1 to p.trials do
          Metrics.incr m_trials;
          let source = Rng.int rng n in
          let receivers =
            (* Receivers are distinct domains other than the source. *)
            let draws = Rng.sample_without_replacement rng (size + 1) n in
            let filtered = Array.of_list (List.filter (fun d -> d <> source) (Array.to_list draws)) in
            Array.sub filtered 0 size
          in
          let root =
            match p.root_placement with
            | Root_at_initiator -> receivers.(0)
            | Root_at_source -> source
            | Root_random -> Rng.int rng n
          in
          let paths =
            Path_eval.evaluate ~from_source:(Spf.bfs_cached spf source)
              ~from_root:(Spf.bfs_cached spf root) topo
              { Path_eval.source; root; receivers }
          in
          let record label stats_avg stats_max worst tree_paths =
            let s = Path_eval.ratios ~baseline:paths.Path_eval.spt tree_paths in
            if s.Path_eval.receivers_counted > 0 then begin
              Stats.add stats_avg s.Path_eval.avg_ratio;
              Stats.add stats_max s.Path_eval.max_ratio;
              if s.Path_eval.max_ratio > !worst then worst := s.Path_eval.max_ratio
            end;
            if p.check_invariants then begin
              if s.Path_eval.receivers_counted <> size then
                pending :=
                  ( Printf.sprintf "%s tree: only %d of %d receivers evaluated" label
                      s.Path_eval.receivers_counted size,
                    None )
                  :: !pending;
              if
                s.Path_eval.receivers_counted > 0
                && (s.Path_eval.avg_ratio < 0.999999 || s.Path_eval.max_ratio < 0.999999)
              then
                pending :=
                  ( Printf.sprintf "%s tree: ratio below 1 (avg %.6f, max %.6f)" label
                      s.Path_eval.avg_ratio s.Path_eval.max_ratio,
                    None )
                  :: !pending
            end
          in
          record "unidirectional" ua um worst_uni paths.Path_eval.unidirectional;
          record "bidirectional" ba bm worst_bi paths.Path_eval.bidirectional;
          record "hybrid" ha hm worst_hy paths.Path_eval.hybrid;
          if p.check_invariants then begin
            violations := !violations + List.length (Invariant.check ~quiescent:false invariants);
            pending := []
          end
        done;
        (match p.telemetry with
        | Some ts -> Timeseries.sample ts ~time:(float_of_int size)
        | None -> ());
        {
          group_size = size;
          uni_avg = Stats.mean ua;
          uni_max = Stats.mean um;
          bi_avg = Stats.mean ba;
          bi_max = Stats.mean bm;
          hy_avg = Stats.mean ha;
          hy_max = Stats.mean hm;
        })
      sizes
  in
  Metrics.set m_worst_uni !worst_uni;
  Metrics.set m_worst_bi !worst_bi;
  Metrics.set m_worst_hy !worst_hy;
  {
    points;
    worst_uni = !worst_uni;
    worst_bi = !worst_bi;
    worst_hy = !worst_hy;
    invariant_violations = !violations;
  }

let series_of_result r =
  let mk label f =
    {
      Stats.label;
      points = Array.of_list (List.map (fun pt -> (float_of_int pt.group_size, f pt)) r.points);
    }
  in
  [
    mk "Unidirectional Tree (ave)" (fun pt -> pt.uni_avg);
    mk "Unidirectional Tree (max)" (fun pt -> pt.uni_max);
    mk "Bidirectional Tree (ave)" (fun pt -> pt.bi_avg);
    mk "Bidirectional Tree (max)" (fun pt -> pt.bi_max);
    mk "Hybrid Tree (ave)" (fun pt -> pt.hy_avg);
    mk "Hybrid Tree (max)" (fun pt -> pt.hy_max);
  ]
