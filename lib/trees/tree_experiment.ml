type root_placement = Root_at_initiator | Root_at_source | Root_random

let m_trials = Metrics.counter "trees.trials_run"
let m_worst_uni = Metrics.gauge "trees.worst_uni"
let m_worst_bi = Metrics.gauge "trees.worst_bi"
let m_worst_hy = Metrics.gauge "trees.worst_hy"

type params = {
  nodes : int;
  attach_degree : int;
  group_sizes : int list;
  trials : int;
  root_placement : root_placement;
  topology : [ `Power_law | `Transit_stub ];
  check_invariants : bool;
  seed : int;
  telemetry : Timeseries.t option;
  jobs : int;
}

let default_params =
  {
    nodes = 3326;
    attach_degree = 2;
    group_sizes = [ 1; 2; 5; 10; 20; 50; 100; 200; 500; 1000 ];
    trials = 20;
    root_placement = Root_at_initiator;
    topology = `Power_law;
    check_invariants = false;
    seed = 1998;
    telemetry = None;
    jobs = 0;
  }

type point = {
  group_size : int;
  uni_avg : float;
  uni_max : float;
  bi_avg : float;
  bi_max : float;
  hy_avg : float;
  hy_max : float;
}

type result = {
  points : point list;
  worst_uni : float;
  worst_bi : float;
  worst_hy : float;
  invariant_violations : int;
}

let make_topology p rng =
  match p.topology with
  | `Power_law -> Gen.power_law ~rng ~n:p.nodes ~m:p.attach_degree
  | `Transit_stub ->
      (* Sized to land near [p.nodes] total domains. *)
      let backbones = 8 in
      let regionals = max 1 (p.nodes / (backbones * 12)) in
      let stubs = 11 in
      Gen.transit_stub ~rng ~backbones ~regionals_per_backbone:regionals
        ~stubs_per_regional:stubs

(* One trial's sampled group.  All randomness is drawn on the main
   domain before any fan-out, in exactly the draw order of the old
   sequential loop, so results are byte-identical at any job count —
   and to the sequential runs that predate the parallel layer. *)
type spec = { sp_source : Domain.id; sp_receivers : Domain.id array; sp_root : Domain.id }

(* What a trial task reports back: per-tree (avg, max) ratios when any
   receiver was counted, plus its invariant-violation count.  Metrics
   and profiler spans travel separately, in the task's Obs shard. *)
type trial_out = {
  t_uni : (float * float) option;
  t_bi : (float * float) option;
  t_hy : (float * float) option;
  t_violations : int;
}

let run p =
  let rng = Rng.create p.seed in
  let topo = Prof.span "fig4.topology" (fun () -> make_topology p rng) in
  let n = Topo.domain_count topo in
  (* Freeze on the main domain: the memoized snapshot must exist before
     worker domains share the topology read-only. *)
  let csr = Topo.freeze topo in
  let worst_uni = ref 0.0 and worst_bi = ref 0.0 and worst_hy = ref 0.0 in
  (match p.telemetry with
  | Some ts ->
      (* The fig4 run has no engine; the series' time axis is the group
         size just finished, one row per point. *)
      Timeseries.register ts "trees.worst_uni" (fun () -> !worst_uni);
      Timeseries.register ts "trees.worst_bi" (fun () -> !worst_bi);
      Timeseries.register ts "trees.worst_hy" (fun () -> !worst_hy);
      Timeseries.register ts "trees.trials_run" (fun () ->
          float_of_int (Metrics.count m_trials))
  | None -> ());
  (* Group sizes are capped by the topology: at most n-1 receivers. *)
  let sizes = List.filter (fun s -> s <= n - 2) p.group_sizes in
  let draw_trial size =
    let source = Rng.int rng n in
    let receivers =
      (* Receivers are distinct domains other than the source. *)
      let draws = Rng.sample_without_replacement rng (size + 1) n in
      let filtered = Array.of_list (List.filter (fun d -> d <> source) (Array.to_list draws)) in
      Array.sub filtered 0 size
    in
    let root =
      match p.root_placement with
      | Root_at_initiator -> receivers.(0)
      | Root_at_source -> source
      | Root_random -> Rng.int rng n
    in
    { sp_source = source; sp_receivers = receivers; sp_root = root }
  in
  let specs = ref [] in
  List.iter (fun size -> for _ = 1 to p.trials do specs := draw_trial size :: !specs done) sizes;
  let specs = List.rev !specs in
  (* One trial = one task.  Each task gets its own SPF cache (over its
     worker slot's reusable workspace) so [spf.cache_*] counts do not
     depend on which domain ran which trial; each task gets its own
     invariant monitor counting into its shard for the same reason. *)
  let run_trial ws spec =
    Metrics.incr m_trials;
    let size = Array.length spec.sp_receivers in
    (* Figure 4 has no engine, so the dispatch hook never fires; one
       record per trial keeps its fingerprint sensitive to the drawn
       trial set and exercises the shard merge path. *)
    if Recorder.is_enabled () then
      Recorder.record ~time:0.0 ~label:"fig4.trial"
        ~subject:(Printf.sprintf "src=%d root=%d size=%d" spec.sp_source spec.sp_root size)
        ();
    let spf = Spf.make_cache_csr ~ws csr in
    let paths =
      Path_eval.evaluate
        ~from_source:(Spf.bfs_cached spf spec.sp_source)
        ~from_root:(Spf.bfs_cached spf spec.sp_root) topo
        { Path_eval.source = spec.sp_source; root = spec.sp_root; receivers = spec.sp_receivers }
    in
    (* Per-trial sanity predicates: a tree path can never beat the
       shortest path (every ratio >= 1), and every receiver must be
       reachable and evaluated. *)
    let invariants = Invariant.create () in
    let pending = ref [] in
    Invariant.register invariants ~name:"tree-ratio" (fun () -> !pending);
    let record label tree_paths =
      let s = Path_eval.ratios ~baseline:paths.Path_eval.spt tree_paths in
      if p.check_invariants then begin
        if s.Path_eval.receivers_counted <> size then
          pending :=
            ( Printf.sprintf "%s tree: only %d of %d receivers evaluated" label
                s.Path_eval.receivers_counted size,
              None )
            :: !pending;
        if
          s.Path_eval.receivers_counted > 0
          && (s.Path_eval.avg_ratio < 0.999999 || s.Path_eval.max_ratio < 0.999999)
        then
          pending :=
            ( Printf.sprintf "%s tree: ratio below 1 (avg %.6f, max %.6f)" label
                s.Path_eval.avg_ratio s.Path_eval.max_ratio,
              None )
            :: !pending
      end;
      if s.Path_eval.receivers_counted > 0 then Some (s.Path_eval.avg_ratio, s.Path_eval.max_ratio)
      else None
    in
    let t_uni = record "unidirectional" paths.Path_eval.unidirectional in
    let t_bi = record "bidirectional" paths.Path_eval.bidirectional in
    let t_hy = record "hybrid" paths.Path_eval.hybrid in
    let t_violations =
      if p.check_invariants then List.length (Invariant.check ~quiescent:false invariants) else 0
    in
    { t_uni; t_bi; t_hy; t_violations }
  in
  let jobs = if p.jobs = 0 then None else Some p.jobs in
  let outs =
    Par.map_with ?jobs
      ~init:(fun () -> Spf.make_workspace csr)
      (fun ws spec -> Par.with_shard (fun () -> Prof.span "fig4.trial" (fun () -> run_trial ws spec)))
      specs
  in
  let outs = Array.of_list outs in
  (* Sequential reduce, in trial order: Obs shards fold back and the
     per-point statistics accumulate exactly as the sequential loop
     did, so every output — stdout, --metrics, --profile, telemetry —
     is independent of scheduling. *)
  let violations = ref 0 in
  let idx = ref 0 in
  let points =
    List.map
      (fun size ->
        let ua = Stats.create () and um = Stats.create () in
        let ba = Stats.create () and bm = Stats.create () in
        let ha = Stats.create () and hm = Stats.create () in
        Prof.span "fig4.point" @@ fun () ->
        for _ = 1 to p.trials do
          let out, shard = outs.(!idx) in
          incr idx;
          Par.merge_shard shard;
          let fold o sa sm worst =
            match o with
            | Some (avg, mx) ->
                Stats.add sa avg;
                Stats.add sm mx;
                if mx > !worst then worst := mx
            | None -> ()
          in
          fold out.t_uni ua um worst_uni;
          fold out.t_bi ba bm worst_bi;
          fold out.t_hy ha hm worst_hy;
          violations := !violations + out.t_violations
        done;
        (match p.telemetry with
        | Some ts -> Timeseries.sample ts ~time:(float_of_int size)
        | None -> ());
        {
          group_size = size;
          uni_avg = Stats.mean ua;
          uni_max = Stats.mean um;
          bi_avg = Stats.mean ba;
          bi_max = Stats.mean bm;
          hy_avg = Stats.mean ha;
          hy_max = Stats.mean hm;
        })
      sizes
  in
  Metrics.set m_worst_uni !worst_uni;
  Metrics.set m_worst_bi !worst_bi;
  Metrics.set m_worst_hy !worst_hy;
  {
    points;
    worst_uni = !worst_uni;
    worst_bi = !worst_bi;
    worst_hy = !worst_hy;
    invariant_violations = !violations;
  }

let series_of_result r =
  let mk label f =
    {
      Stats.label;
      points = Array.of_list (List.map (fun pt -> (float_of_int pt.group_size, f pt)) r.points);
    }
  in
  [
    mk "Unidirectional Tree (ave)" (fun pt -> pt.uni_avg);
    mk "Unidirectional Tree (max)" (fun pt -> pt.uni_max);
    mk "Bidirectional Tree (ave)" (fun pt -> pt.bi_avg);
    mk "Bidirectional Tree (max)" (fun pt -> pt.bi_max);
    mk "Hybrid Tree (ave)" (fun pt -> pt.hy_avg);
    mk "Hybrid Tree (max)" (fun pt -> pt.hy_max);
  ]
