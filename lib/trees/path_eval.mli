(** Sender→receiver path lengths on the four kinds of inter-domain
    multicast distribution trees the paper compares in §5.4:

    - {b shortest-path trees} (DVMRP / PIM-DM / MOSPF): data follows the
      unicast shortest path — the baseline, ratio 1.0;
    - {b unidirectional shared trees} (PIM-SM): data travels from the
      sender to the RP, then down the shared tree;
    - {b bidirectional shared trees} (CBT / plain BGMP): data flows
      toward the root only until it meets the tree, then along tree
      edges in either direction;
    - {b hybrid trees} (BGMP + §5.3 source-specific branches): receivers
      whose shortest path to the source beats their shared-tree path
      graft a branch toward the source; the branch stops at the first
      node already on the bidirectional tree or at the source domain.

    Path lengths are counted in inter-domain hops, as in the paper. *)

type group = {
  source : Domain.id;
  root : Domain.id;  (** root domain = RP = core, for comparability *)
  receivers : Domain.id array;  (** join order = array order *)
}

type paths = {
  spt : int array;  (** per receiver: shortest-path hops from the source *)
  unidirectional : int array;
  bidirectional : int array;
  hybrid : int array;
}

val evaluate : ?from_source:Spf.paths -> ?from_root:Spf.paths -> Topo.t -> group -> paths
(** Compute all four path lengths for every receiver of the group.

    [?from_source] / [?from_root] supply precomputed [Spf.bfs] results
    for the group's source and root (typically from an {!Spf.cache});
    each must have the matching [src] or [Invalid_argument] is raised.
    The root paths are also threaded into the {!Shared_tree.build}, so a
    fully-supplied call runs no BFS at all. *)

type ratio_summary = {
  avg_ratio : float;  (** mean over receivers of (tree path / SPT path) *)
  max_ratio : float;
  receivers_counted : int;  (** receivers with a non-zero SPT distance *)
}

val ratios : baseline:int array -> int array -> ratio_summary
(** Ratio statistics of a tree's paths against the SPT baseline;
    receivers co-located with the source (SPT distance 0) are skipped. *)
