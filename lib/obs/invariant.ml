type violation = { inv : string; detail : string; trace_id : string option }

type check = unit -> (string * string option) list

type pred = { name : string; quiescent_only : bool; run : check }

(* Bounded retention of violations returned by [check]: the first
   [seen_cap] survive, later ones only bump the counters.  Keeping the
   head (not a sliding tail) means the *first* violation — the one a
   caller wants to blame after a run — is always recoverable. *)
let seen_cap = 64

type t = {
  registry : Metrics.registry;
  mutable preds : pred list;
  mutable seen : violation list;  (** first [seen_cap] violations, newest first *)
  mutable n_seen : int;
}

let create ?registry () =
  let registry = match registry with Some r -> r | None -> Metrics.current () in
  { registry; preds = []; seen = []; n_seen = 0 }

let register ?(quiescent_only = false) t ~name run =
  if List.exists (fun p -> p.name = name) t.preds then
    invalid_arg (Printf.sprintf "Invariant.register: duplicate %S" name);
  t.preds <- t.preds @ [ { name; quiescent_only; run } ]

let names t = List.map (fun p -> p.name) t.preds

let check ?(quiescent = true) t =
  Metrics.incr (Metrics.counter ~registry:t.registry "invariant.checks");
  let vs =
    List.concat_map
      (fun p ->
        if p.quiescent_only && not quiescent then []
        else
          let vs = p.run () in
          (match vs with
          | [] -> ()
          | _ ->
              let n = List.length vs in
              Metrics.add (Metrics.counter ~registry:t.registry "invariant.violations") n;
              Metrics.add
                (Metrics.counter ~registry:t.registry ("invariant.violations." ^ p.name))
                n);
          List.map (fun (detail, trace_id) -> { inv = p.name; detail; trace_id }) vs)
      t.preds
  in
  List.iter
    (fun v ->
      if t.n_seen < seen_cap then begin
        t.seen <- v :: t.seen;
        t.n_seen <- t.n_seen + 1
      end)
    vs;
  vs

let violations_seen t = List.rev t.seen

let pp_violation ppf v =
  match v.trace_id with
  | None -> Format.fprintf ppf "invariant %s violated: %s" v.inv v.detail
  | Some id -> Format.fprintf ppf "invariant %s violated [%s]: %s" v.inv id v.detail
