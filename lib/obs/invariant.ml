type violation = { inv : string; detail : string; trace_id : string option }

type check = unit -> (string * string option) list

type pred = { name : string; quiescent_only : bool; run : check }

type t = { registry : Metrics.registry; mutable preds : pred list }

let create ?registry () =
  let registry = match registry with Some r -> r | None -> Metrics.current () in
  { registry; preds = [] }

let register ?(quiescent_only = false) t ~name run =
  if List.exists (fun p -> p.name = name) t.preds then
    invalid_arg (Printf.sprintf "Invariant.register: duplicate %S" name);
  t.preds <- t.preds @ [ { name; quiescent_only; run } ]

let names t = List.map (fun p -> p.name) t.preds

let check ?(quiescent = true) t =
  Metrics.incr (Metrics.counter ~registry:t.registry "invariant.checks");
  List.concat_map
    (fun p ->
      if p.quiescent_only && not quiescent then []
      else
        let vs = p.run () in
        (match vs with
        | [] -> ()
        | _ ->
            let n = List.length vs in
            Metrics.add (Metrics.counter ~registry:t.registry "invariant.violations") n;
            Metrics.add (Metrics.counter ~registry:t.registry ("invariant.violations." ^ p.name)) n);
        List.map (fun (detail, trace_id) -> { inv = p.name; detail; trace_id }) vs)
    t.preds

let pp_violation ppf v =
  match v.trace_id with
  | None -> Format.fprintf ppf "invariant %s violated: %s" v.inv v.detail
  | Some id -> Format.fprintf ppf "invariant %s violated [%s]: %s" v.inv id v.detail
