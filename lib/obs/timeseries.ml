type sink = Memory | Ring of int | Jsonl of string

type store =
  | S_memory of (float * (string * float) list) list ref  (* reversed *)
  | S_ring of { cap : int; buf : (float * (string * float) list) option array; mutable next : int }
  | S_jsonl of { file : string; mutable oc : out_channel option }

type t = {
  mutable srcs : (string * (unit -> float) ref) list;  (* reversed registration order *)
  store : store;
  mutable n : int;
}

let create ?(sink = Memory) () =
  let store =
    match sink with
    | Memory -> S_memory (ref [])
    | Ring cap ->
        if cap <= 0 then invalid_arg "Timeseries.create: non-positive ring";
        S_ring { cap; buf = Array.make cap None; next = 0 }
    | Jsonl file -> S_jsonl { file; oc = None }
  in
  { srcs = []; store; n = 0 }

let register t name read =
  match List.assoc_opt name t.srcs with
  | Some cell -> cell := read
  | None -> t.srcs <- (name, ref read) :: t.srcs

let register_gauge t name g = register t name (fun () -> Metrics.value g)

let register_counter t name c = register t name (fun () -> float_of_int (Metrics.count c))

let sources t = List.rev_map fst t.srcs

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit t ~time row =
  t.n <- t.n + 1;
  match t.store with
  | S_memory cell -> cell := (time, row) :: !cell
  | S_ring r ->
      r.buf.(r.next) <- Some (time, row);
      r.next <- (r.next + 1) mod r.cap
  | S_jsonl j ->
      let oc =
        match j.oc with
        | Some oc -> oc
        | None ->
            let oc = open_out j.file in
            j.oc <- Some oc;
            oc
      in
      List.iter
        (fun (name, v) ->
          Printf.fprintf oc "{\"at\": %.17g, \"series\": \"%s\", \"value\": %.17g}\n" time
            (json_escape name) v)
        row

let sample t ~time = emit t ~time (List.rev_map (fun (name, read) -> (name, !read ())) t.srcs)

let samples t = t.n

let rows t =
  match t.store with
  | S_memory cell -> List.rev !cell
  | S_ring r ->
      let out = ref [] in
      for i = 1 to r.cap do
        (* oldest slot first: [next] points at the oldest entry *)
        match r.buf.((r.next + r.cap - i) mod r.cap) with
        | Some row -> out := row :: !out
        | None -> ()
      done;
      !out
  | S_jsonl _ -> []

(* Replay a shard sink's recorded rows into another sink, oldest first.
   The source must hold its rows in memory (Memory or Ring); merging in
   a deterministic shard order keeps the destination deterministic. *)
let merge_into ~into src =
  if into != src then List.iter (fun (time, row) -> emit into ~time row) (rows src)

let close t =
  match t.store with
  | S_jsonl j -> (
      match j.oc with
      | Some oc ->
          close_out oc;
          j.oc <- None
      | None -> ())
  | S_memory _ | S_ring _ -> ()

(* --- Loading --------------------------------------------------------- *)

type point = { at : float; series : string; value : float }

(* Scanner for exactly the shape [sample] writes. *)
let point_of_json line =
  let n = String.length line in
  let pos = ref 0 in
  let error = ref false in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if !pos < n && line.[!pos] = c then incr pos else error := true
  in
  let literal s =
    skip_ws ();
    let k = String.length s in
    if !pos + k <= n && String.sub line !pos k = s then pos := !pos + k else error := true
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 24 in
    let fin = ref false in
    while (not !fin) && not !error do
      if !pos >= n then error := true
      else begin
        let c = line.[!pos] in
        incr pos;
        if c = '"' then fin := true
        else if c = '\\' then begin
          if !pos >= n then error := true
          else begin
            let e = line.[!pos] in
            incr pos;
            match e with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | _ -> error := true
          end
        end
        else Buffer.add_char b c
      end
    done;
    Buffer.contents b
  in
  let parse_number () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      &&
      match line.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some f -> f
    | None ->
        error := true;
        0.0
  in
  let field key =
    literal ("\"" ^ key ^ "\"");
    expect ':'
  in
  expect '{';
  field "at";
  let at = parse_number () in
  expect ',';
  field "series";
  let series = parse_string () in
  expect ',';
  field "value";
  let value = parse_number () in
  expect '}';
  if !error then None else Some { at; series; value }

let load_jsonl_counted file =
  let ic = open_in file in
  let acc = ref [] in
  let bad = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match point_of_json line with Some p -> acc := p :: !acc | None -> incr bad
     done
   with End_of_file -> ());
  close_in ic;
  (List.rev !acc, !bad)

let load_jsonl file = fst (load_jsonl_counted file)

let series_of points =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun p ->
      match Hashtbl.find_opt tbl p.series with
      | Some cell -> cell := (p.at, p.value) :: !cell
      | None ->
          Hashtbl.add tbl p.series (ref [ (p.at, p.value) ]);
          order := p.series :: !order)
    points;
  List.rev_map (fun name -> (name, Array.of_list (List.rev !(Hashtbl.find tbl name)))) !order
