(** Live protocol invariants, checked while a run is in flight.

    A monitor holds named predicates over live protocol state.  Each
    predicate returns the list of current violations as
    [(detail, trace_id option)] pairs — empty when the invariant holds.
    Checks are counted in a metrics registry ([invariant.checks],
    [invariant.violations], [invariant.violations.<name>]); recording
    violations into a trace is the caller's job, since the monitor is
    deliberately ignorant of the simulator.

    Predicates registered [~quiescent_only:true] are skipped while the
    event queue is still busy: they describe end states (e.g. tree
    connectivity) that transient in-flight messages legitimately
    violate. *)

type violation = { inv : string; detail : string; trace_id : string option }

type check = unit -> (string * string option) list

type t

val create : ?registry:Metrics.registry -> unit -> t
(** The default registry is the creating domain's {!Metrics.current}
    at call time, so monitors created inside a [Par] task count into
    that task's shard. *)

val register : ?quiescent_only:bool -> t -> name:string -> check -> unit
(** Raises [Invalid_argument] on a duplicate name. *)

val names : t -> string list
(** Registered predicate names, in registration order. *)

val check : ?quiescent:bool -> t -> violation list
(** Run every applicable predicate; [~quiescent:false] (a mid-run
    cadence check) skips [quiescent_only] predicates.  Default is
    [true]: check everything. *)

val violations_seen : t -> violation list
(** Violations returned by every {!check} so far, oldest first, capped
    at a bounded ring of 64: the head of the history survives, so the
    {e first} violation's detail and trace id are always recoverable
    after a run without re-deriving them from metrics.  Counter
    semantics ([invariant.violations.*]) are unchanged by retention. *)

val pp_violation : Format.formatter -> violation -> unit
