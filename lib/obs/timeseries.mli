(** Sim-time telemetry series.

    A [Timeseries.t] holds named sources — thunks reading a gauge, a
    counter, a queue depth — and snapshots all of them each time
    [sample] is called.  The module is passive: it never touches the
    engine, so cadence is owned by whoever drives it (the engine's
    sampler hook in practice, or an experiment's own sampling loop).
    Samples land in an in-memory store, a bounded ring, or a JSONL
    file. *)

type t

type sink =
  | Memory  (** keep every sample in memory *)
  | Ring of int  (** keep only the last [n] samples *)
  | Jsonl of string  (** append rows to a file, opened on first sample *)

val create : ?sink:sink -> unit -> t
(** Default sink is [Memory]. *)

val register : t -> string -> (unit -> float) -> unit
(** Add a named source.  Re-registering a name replaces its reader;
    sources are sampled in first-registration order. *)

val register_gauge : t -> string -> Metrics.gauge -> unit

val register_counter : t -> string -> Metrics.counter -> unit

val sources : t -> string list

val sample : t -> time:float -> unit
(** Read every source once and record one row at [time]. *)

val samples : t -> int
(** Rows recorded so far (including rows a ring has evicted). *)

val rows : t -> (float * (string * float) list) list
(** In-memory rows, oldest first.  Empty for a [Jsonl] sink. *)

val merge_into : into:t -> t -> unit
(** Replay [src]'s in-memory rows into [into]'s store, oldest first —
    the join-point merge for shard-local [Memory] sinks collected by
    parallel tasks.  Rows pass through unchanged (the source's
    registered readers are not re-run); merging shards in a
    deterministic order keeps the destination byte-deterministic.
    No-op for a [Jsonl] source (it retains no rows). *)

val close : t -> unit
(** Flush and close a [Jsonl] sink; no-op otherwise. *)

(** {1 Loading and shaping} *)

type point = { at : float; series : string; value : float }

val load_jsonl : string -> point list
(** Parse a file written by the [Jsonl] sink; bad lines are skipped. *)

val load_jsonl_counted : string -> point list * int
(** Like {!load_jsonl}, also returning the count of malformed
    non-blank lines skipped. *)

val series_of : point list -> (string * (float * float) array) list
(** Group points into per-series (time, value) arrays, series in
    first-appearance order, points in file order. *)
