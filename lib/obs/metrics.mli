(** Domain-aware metrics registry.

    Named counters, gauges and fixed-bucket histograms with O(1)
    hot-path updates: an instrument handle is looked up (or created)
    once by name and then updated without any allocation or hashing.
    Names are hierarchical dot-paths ([bgmp.join_sent],
    [masc.collisions], [sim.events_fired], [spf.cache_hits]) so
    snapshots group naturally by subsystem.

    Every domain records into its own {e current} registry, so
    shard-local collection under [Par] needs no locks: the main
    domain's current registry is {!default}, a worker domain's is
    whatever shard [set_current]/[with_current] installed, and shards
    are folded back with {!merge_into} at join points.  A handle
    created without an explicit [?registry] follows the current
    registry of whichever domain uses it (module-toplevel handles stay
    safe inside parallel tasks); a handle created with [?registry] is
    pinned to that registry for its lifetime.

    The protocol stack records into {!default}; the evaluation harness
    calls {!reset} before a run and {!snapshot} after it.  Snapshots are
    deterministic (sorted by name), diffable, and exportable as a human
    table or JSON. *)

type counter
type gauge
type histogram

type registry

val create : unit -> registry

val default : registry
(** The main domain's current registry: every instrument in the stack
    registers here unless a shard is installed. *)

val current : unit -> registry
(** This domain's current registry ({!default} on the main domain
    unless overridden). *)

val set_current : registry -> unit
(** Install [r] as this domain's current registry. *)

val with_current : registry -> (unit -> 'a) -> 'a
(** Run the thunk with [r] current on this domain, restoring the
    previous current registry afterwards (exception-safe). *)

val merge_into : into:registry -> registry -> unit
(** Fold a shard registry into [into]: counters and histogram buckets
    add exactly, histogram moment accumulators combine via
    {!Stats.merge}, gauges keep the maximum (the cross-shard reading of
    {!set_max} high-water marks).  Instruments missing from [into] are
    created.  Merging the same shards in the same order is
    deterministic; counter totals are order-independent.
    @raise Invalid_argument on an instrument-kind or histogram-limits
    mismatch. *)

(** {1 Instrument handles}

    [counter]/[gauge]/[histogram] find-or-create by name: calling twice
    with the same name returns a handle to the same instrument.
    @raise Invalid_argument if the name is already registered as a
    different kind of instrument. *)

val counter : ?registry:registry -> string -> counter
val gauge : ?registry:registry -> string -> gauge

val histogram : ?registry:registry -> ?limits:float array -> string -> histogram
(** [limits] are the bucket upper bounds (inclusive), in increasing
    order; one overflow bucket is added above the last limit.  The
    default limits are decades from 1e-3 to 1e6 — adequate for
    durations in simulated seconds. *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Keep the running maximum: [set_max g v] is [set g v] when [v]
    exceeds the current value (high-water marks like queue depth). *)

val value : gauge -> float

val observe : histogram -> float -> unit

val reset : registry -> unit
(** Zero every instrument in place.  Handles stay valid. *)

(** {1 Snapshots} *)

type hist_view = {
  hcount : int;
  hsum : float;
  hmean : float;
  hstddev : float;
  hmin : float;  (** 0. when empty *)
  hmax : float;  (** 0. when empty *)
  hbuckets : (float * int) list;
      (** (upper bound, observations in this bin); the overflow bin's
          bound is [infinity] *)
}

val percentile_of_view : hist_view -> float -> float
(** [percentile_of_view v p] with [p] in [\[0, 100\]]: the classic
    bucket-interpolated percentile estimate — walk the cumulative bucket
    counts to the bucket holding rank [p], then interpolate linearly
    inside it, clamped to the observed min/max (so p0 is [hmin] and p100
    is [hmax] exactly).  @raise Invalid_argument on an empty view or
    [p] outside the range. *)

type value = Counter_v of int | Gauge_v of float | Histogram_v of hist_view

type snapshot = (string * value) list
(** Sorted by name: two identical seeded runs yield equal snapshots. *)

val snapshot : registry -> snapshot

val find : snapshot -> string -> value option

val diff : before:snapshot -> after:snapshot -> snapshot
(** Per-instrument delta: counters and histogram counts/sums subtract
    (names absent from [before] count from zero); gauges and histogram
    min/max/mean report the [after] side. *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable table, one instrument per line. *)

val to_json : snapshot -> string
(** Deterministic JSON document:
    [{"metrics": [{"name": ..., "kind": ..., ...}, ...]}]. *)
