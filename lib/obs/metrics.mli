(** Process-wide metrics registry.

    Named counters, gauges and fixed-bucket histograms with O(1)
    hot-path updates: an instrument handle is looked up (or created)
    once by name and then updated without any allocation or hashing.
    Names are hierarchical dot-paths ([bgmp.join_sent],
    [masc.collisions], [sim.events_fired], [spf.cache_hits]) so
    snapshots group naturally by subsystem.

    The protocol stack records into {!default}; the evaluation harness
    calls {!reset} before a run and {!snapshot} after it.  Snapshots are
    deterministic (sorted by name), diffable, and exportable as a human
    table or JSON. *)

type counter
type gauge
type histogram

type registry

val create : unit -> registry

val default : registry
(** The registry every instrument in the stack registers into. *)

(** {1 Instrument handles}

    [counter]/[gauge]/[histogram] find-or-create by name: calling twice
    with the same name returns the same handle.
    @raise Invalid_argument if the name is already registered as a
    different kind of instrument. *)

val counter : ?registry:registry -> string -> counter
val gauge : ?registry:registry -> string -> gauge

val histogram : ?registry:registry -> ?limits:float array -> string -> histogram
(** [limits] are the bucket upper bounds (inclusive), in increasing
    order; one overflow bucket is added above the last limit.  The
    default limits are decades from 1e-3 to 1e6 — adequate for
    durations in simulated seconds. *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Keep the running maximum: [set_max g v] is [set g v] when [v]
    exceeds the current value (high-water marks like queue depth). *)

val value : gauge -> float

val observe : histogram -> float -> unit

val reset : registry -> unit
(** Zero every instrument in place.  Handles stay valid. *)

(** {1 Snapshots} *)

type hist_view = {
  hcount : int;
  hsum : float;
  hmean : float;
  hstddev : float;
  hmin : float;  (** 0. when empty *)
  hmax : float;  (** 0. when empty *)
  hbuckets : (float * int) list;
      (** (upper bound, observations in this bin); the overflow bin's
          bound is [infinity] *)
}

type value = Counter_v of int | Gauge_v of float | Histogram_v of hist_view

type snapshot = (string * value) list
(** Sorted by name: two identical seeded runs yield equal snapshots. *)

val snapshot : registry -> snapshot

val find : snapshot -> string -> value option

val diff : before:snapshot -> after:snapshot -> snapshot
(** Per-instrument delta: counters and histogram counts/sums subtract
    (names absent from [before] count from zero); gauges and histogram
    min/max/mean report the [after] side. *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable table, one instrument per line. *)

val to_json : snapshot -> string
(** Deterministic JSON document:
    [{"metrics": [{"name": ..., "kind": ..., ...}, ...]}]. *)
