(** Hierarchical scoped profiler.

    [span "spf.dijkstra" f] times [f ()] (wall clock and GC-allocated
    bytes) and charges it to the node ["spf.dijkstra"] under whatever
    span is currently open, building a call tree per domain.  The
    profiler is off by default: when disabled, [span] is a single flag
    test plus a tail call — no clock reads, no allocation, no table
    lookups — so instrumented hot paths stay byte-identical in
    behaviour and near-identical in cost.

    The tree under construction is domain-local, so worker domains can
    profile concurrently.  A [Par] task wraps its work in {!capture};
    the detached subtree is grafted back into the submitting domain's
    tree with {!merge} at the join point, in task order, so the merged
    tree's structure, counts and sibling order are identical at any
    [--jobs] (wall-clock totals are per-shard CPU sums).  The on/off
    flag is shared: flip it from the main domain while no workers run.

    All output goes through the caller's formatter or an explicit file,
    never stdout, so seeded runs stay byte-identical on stdout. *)

val is_enabled : unit -> bool

val enable : unit -> unit
(** Also resets any previously collected tree. *)

val disable : unit -> unit
(** Stops collection; the tree collected so far remains readable. *)

val reset : unit -> unit

val span : string -> (unit -> 'a) -> 'a
(** Run the thunk under a named section.  Sections nest: the same name
    under different parents is a different node.  Exceptions propagate;
    the section is closed and charged either way. *)

(** {1 Shard capture and merge} *)

type tree
(** A detached span forest, as captured by one shard. *)

val capture : (unit -> 'a) -> 'a * tree
(** Run the thunk with spans charged to a fresh detached tree on this
    domain instead of the live one.  When the profiler is disabled the
    thunk runs untouched and the tree is empty. *)

val merge : tree -> unit
(** Graft a captured tree's sections under this domain's currently open
    span, accumulating counts, wall-clock and allocation into
    same-named children (recursively, preserving first-entered sibling
    order).  No-op when the profiler is disabled. *)

val merge_tree : into:tree -> tree -> unit
(** [merge_tree ~into t] accumulates [t] into another detached tree —
    the associative tree sum {!merge} applies to the live tree. *)

(** {1 Reporting} *)

type row = {
  path : string list;  (** root-to-node section names *)
  count : int;  (** times the section was entered *)
  total_s : float;  (** wall-clock including children *)
  self_s : float;  (** wall-clock minus children *)
  total_bytes : float;  (** GC-allocated bytes including children *)
  self_bytes : float;  (** GC-allocated bytes minus children *)
}

val rows : unit -> row list
(** Depth-first pre-order, children in first-entered order. *)

val tree_rows : tree -> row list
(** Rows of a detached tree, like {!rows}. *)

val pp_rows : Format.formatter -> row list -> unit
(** Indented table: count, total/self wall-clock, total/self allocation. *)

val pp : Format.formatter -> unit -> unit
(** [pp_rows] of the live tree. *)

val row_to_json : row -> string
(** One JSON object, path joined with [';']. *)

val row_of_json : string -> row option

val to_jsonl : unit -> string

val write_jsonl : string -> unit
(** Write the live tree to [file], one row per line. *)

val load_jsonl : string -> row list
(** Parse a file written by [write_jsonl]; unparseable lines are
    skipped. *)

val load_jsonl_counted : string -> row list * int
(** Like {!load_jsonl}, also returning the count of malformed
    non-blank lines skipped. *)

val folded : row list -> string
(** Flamegraph folded-stacks: one ["a;b;c <self-microseconds>"] line per
    row with non-zero self time. *)

val find : row list -> string list -> row option
(** Look up a row by exact path. *)
