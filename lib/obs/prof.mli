(** Hierarchical scoped profiler.

    [span "spf.dijkstra" f] times [f ()] (wall clock and GC-allocated
    bytes) and charges it to the node ["spf.dijkstra"] under whatever
    span is currently open, building a call tree per process.  The
    profiler is global and off by default: when disabled, [span] is a
    single flag test plus a tail call — no clock reads, no allocation,
    no table lookups — so instrumented hot paths stay byte-identical in
    behaviour and near-identical in cost.

    All output goes through the caller's formatter or an explicit file,
    never stdout, so seeded runs stay byte-identical on stdout. *)

val is_enabled : unit -> bool

val enable : unit -> unit
(** Also resets any previously collected tree. *)

val disable : unit -> unit
(** Stops collection; the tree collected so far remains readable. *)

val reset : unit -> unit

val span : string -> (unit -> 'a) -> 'a
(** Run the thunk under a named section.  Sections nest: the same name
    under different parents is a different node.  Exceptions propagate;
    the section is closed and charged either way. *)

(** {1 Reporting} *)

type row = {
  path : string list;  (** root-to-node section names *)
  count : int;  (** times the section was entered *)
  total_s : float;  (** wall-clock including children *)
  self_s : float;  (** wall-clock minus children *)
  total_bytes : float;  (** GC-allocated bytes including children *)
  self_bytes : float;  (** GC-allocated bytes minus children *)
}

val rows : unit -> row list
(** Depth-first pre-order, children in first-entered order. *)

val pp_rows : Format.formatter -> row list -> unit
(** Indented table: count, total/self wall-clock, total/self allocation. *)

val pp : Format.formatter -> unit -> unit
(** [pp_rows] of the live tree. *)

val row_to_json : row -> string
(** One JSON object, path joined with [';']. *)

val row_of_json : string -> row option

val to_jsonl : unit -> string

val write_jsonl : string -> unit
(** Write the live tree to [file], one row per line. *)

val load_jsonl : string -> row list
(** Parse a file written by [write_jsonl]; unparseable lines are
    skipped. *)

val folded : row list -> string
(** Flamegraph folded-stacks: one ["a;b;c <self-microseconds>"] line per
    row with non-zero self time. *)

val find : row list -> string list -> row option
(** Look up a row by exact path. *)
