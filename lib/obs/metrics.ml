type counter = { mutable c : int }

type gauge = { mutable g : float }

type histogram = {
  limits : float array;
  buckets : int array;  (** length = Array.length limits + 1 (overflow) *)
  mutable hstats : Stats.t;
}

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

type registry = { tbl : (string, instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let default = create ()

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let register registry name ~kind ~make ~cast =
  let registry = Option.value ~default registry in
  match Hashtbl.find_opt registry.tbl name with
  | Some i -> (
      match cast i with
      | Some x -> x
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics.%s: %s is already registered as a %s" kind name
               (kind_name i)))
  | None ->
      let x, i = make () in
      Hashtbl.replace registry.tbl name i;
      x

let counter ?registry name =
  register registry name ~kind:"counter"
    ~make:(fun () ->
      let c = { c = 0 } in
      (c, Counter c))
    ~cast:(function Counter c -> Some c | Gauge _ | Histogram _ -> None)

let gauge ?registry name =
  register registry name ~kind:"gauge"
    ~make:(fun () ->
      let g = { g = 0.0 } in
      (g, Gauge g))
    ~cast:(function Gauge g -> Some g | Counter _ | Histogram _ -> None)

let default_limits =
  [| 0.001; 0.01; 0.1; 1.0; 10.0; 100.0; 1000.0; 10000.0; 100000.0; 1000000.0 |]

let histogram ?registry ?(limits = default_limits) name =
  Array.iteri
    (fun i l ->
      if i > 0 && l <= limits.(i - 1) then
        invalid_arg "Metrics.histogram: limits must be strictly increasing")
    limits;
  register registry name ~kind:"histogram"
    ~make:(fun () ->
      let h =
        {
          limits = Array.copy limits;
          buckets = Array.make (Array.length limits + 1) 0;
          hstats = Stats.create ();
        }
      in
      (h, Histogram h))
    ~cast:(function Histogram h -> Some h | Counter _ | Gauge _ -> None)

let incr c = c.c <- c.c + 1

let add c n = c.c <- c.c + n

let count c = c.c

let set g v = g.g <- v

let set_max g v = if v > g.g then g.g <- v

let value g = g.g

let observe h x =
  Stats.add h.hstats x;
  let n = Array.length h.limits in
  let i = ref 0 in
  while !i < n && x > h.limits.(!i) do
    Stdlib.incr i
  done;
  h.buckets.(!i) <- h.buckets.(!i) + 1

let reset registry =
  Hashtbl.iter
    (fun _ i ->
      match i with
      | Counter c -> c.c <- 0
      | Gauge g -> g.g <- 0.0
      | Histogram h ->
          Array.fill h.buckets 0 (Array.length h.buckets) 0;
          h.hstats <- Stats.create ())
    registry.tbl

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist_view = {
  hcount : int;
  hsum : float;
  hmean : float;
  hstddev : float;
  hmin : float;
  hmax : float;
  hbuckets : (float * int) list;
}

type value = Counter_v of int | Gauge_v of float | Histogram_v of hist_view

type snapshot = (string * value) list

let view_of_histogram h =
  let n = Stats.count h.hstats in
  let mean = Stats.mean h.hstats in
  {
    hcount = n;
    hsum = mean *. float_of_int n;
    hmean = mean;
    hstddev = Stats.stddev h.hstats;
    hmin = (if n = 0 then 0.0 else Stats.min h.hstats);
    hmax = (if n = 0 then 0.0 else Stats.max h.hstats);
    hbuckets =
      List.init
        (Array.length h.buckets)
        (fun i ->
          let bound = if i < Array.length h.limits then h.limits.(i) else infinity in
          (bound, h.buckets.(i)));
  }

let snapshot registry =
  Hashtbl.fold
    (fun name i acc ->
      let v =
        match i with
        | Counter c -> Counter_v c.c
        | Gauge g -> Gauge_v g.g
        | Histogram h -> Histogram_v (view_of_histogram h)
      in
      (name, v) :: acc)
    registry.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find snap name = List.assoc_opt name snap

let diff ~before ~after =
  List.map
    (fun (name, v) ->
      let v' =
        match (v, find before name) with
        | Counter_v a, Some (Counter_v b) -> Counter_v (a - b)
        | Histogram_v a, Some (Histogram_v b) ->
            Histogram_v
              {
                a with
                hcount = a.hcount - b.hcount;
                hsum = a.hsum -. b.hsum;
                hbuckets =
                  List.map2
                    (fun (bound, ca) (_, cb) -> (bound, ca - cb))
                    a.hbuckets b.hbuckets;
              }
        | (Counter_v _ | Gauge_v _ | Histogram_v _), _ -> v
      in
      (name, v'))
    after

let pp_float ppf f =
  if Float.is_integer f && Float.abs f < 1e15 then Format.fprintf ppf "%.0f" f
  else Format.fprintf ppf "%g" f

let pp ppf snap =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_v c -> Format.fprintf ppf "%-36s %d@." name c
      | Gauge_v g -> Format.fprintf ppf "%-36s %a@." name pp_float g
      | Histogram_v h ->
          Format.fprintf ppf "%-36s count=%d mean=%a min=%a max=%a@." name h.hcount pp_float
            h.hmean pp_float h.hmin pp_float h.hmax)
    snap

(* Deterministic, dependency-free JSON. *)

let json_float f =
  if Float.is_nan f then "null"
  else if f = infinity then "\"+inf\""
  else if f = neg_infinity then "\"-inf\""
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json snap =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"metrics\": [\n";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string b ",\n";
      (match v with
      | Counter_v c ->
          Buffer.add_string b
            (Printf.sprintf "    {\"name\": \"%s\", \"kind\": \"counter\", \"value\": %d}"
               (json_escape name) c)
      | Gauge_v g ->
          Buffer.add_string b
            (Printf.sprintf "    {\"name\": \"%s\", \"kind\": \"gauge\", \"value\": %s}"
               (json_escape name) (json_float g))
      | Histogram_v h ->
          Buffer.add_string b
            (Printf.sprintf
               "    {\"name\": \"%s\", \"kind\": \"histogram\", \"count\": %d, \"sum\": %s, \
                \"mean\": %s, \"stddev\": %s, \"min\": %s, \"max\": %s, \"buckets\": [%s]}"
               (json_escape name) h.hcount (json_float h.hsum) (json_float h.hmean)
               (json_float h.hstddev) (json_float h.hmin) (json_float h.hmax)
               (String.concat ", "
                  (List.map
                     (fun (bound, c) ->
                       Printf.sprintf "{\"le\": %s, \"count\": %d}" (json_float bound) c)
                     h.hbuckets)))))
    snap;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b
