type ccell = { mutable c : int }

type gcell = { mutable g : float }

type hcell = {
  limits : float array;
  buckets : int array;  (** length = Array.length limits + 1 (overflow) *)
  mutable hstats : Stats.t;
}

type instrument = Counter of ccell | Gauge of gcell | Histogram of hcell

type registry = { tbl : (string, instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let default = create ()

(* Each domain records into its own *current* registry, so shard-local
   collection (Par tasks) needs no locks: a registry is only ever
   mutated by the domain it is current on.  The main domain's current
   registry is [default]; a freshly spawned domain starts on a private
   scratch registry until [set_current] installs its shard. *)
let current_key : registry Domain.DLS.key = Domain.DLS.new_key (fun () -> create ())

let () = Domain.DLS.set current_key default

let current () = Domain.DLS.get current_key

let set_current r = Domain.DLS.set current_key r

let with_current r f =
  let prev = current () in
  set_current r;
  Fun.protect ~finally:(fun () -> set_current prev) f

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let find_or_create registry name ~kind ~make ~cast =
  match Hashtbl.find_opt registry.tbl name with
  | Some i -> (
      match cast i with
      | Some x -> x
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics.%s: %s is already registered as a %s" kind name
               (kind_name i)))
  | None ->
      let x, i = make () in
      Hashtbl.replace registry.tbl name i;
      x

(* A handle created with an explicit registry is pinned to one cell for
   its lifetime (the historical behaviour).  A handle created without
   one follows the *current* registry of whichever domain uses it: the
   cell is re-resolved by name whenever the cached binding's registry is
   not this domain's current registry.  The cached [(registry, cell)]
   pair is immutable and replaced whole, so a racing reader on another
   domain sees either binding, verifies the registry against its own
   current, and rebinds on mismatch — increments can never land in a
   registry that is not current on the incrementing domain. *)
type 'cell binding = { bname : string; mutable bound : registry * 'cell }

type counter = Pinned_c of ccell | Dyn_c of ccell binding

type gauge = Pinned_g of gcell | Dyn_g of gcell binding

(* The dynamic histogram handle must remember its creation limits:
   re-resolving in a fresh registry (a Par shard) has to recreate the
   cell with the *same* buckets, or the shard merge would reject it as
   mismatched. *)
type histogram = Pinned_h of hcell | Dyn_h of { blimits : float array option; hb : hcell binding }

let counter_cell registry name =
  find_or_create registry name ~kind:"counter"
    ~make:(fun () ->
      let c = { c = 0 } in
      (c, Counter c))
    ~cast:(function Counter c -> Some c | Gauge _ | Histogram _ -> None)

let gauge_cell registry name =
  find_or_create registry name ~kind:"gauge"
    ~make:(fun () ->
      let g = { g = 0.0 } in
      (g, Gauge g))
    ~cast:(function Gauge g -> Some g | Counter _ | Histogram _ -> None)

let default_limits =
  [| 0.001; 0.01; 0.1; 1.0; 10.0; 100.0; 1000.0; 10000.0; 100000.0; 1000000.0 |]

let histogram_cell ?(limits = default_limits) registry name =
  Array.iteri
    (fun i l ->
      if i > 0 && l <= limits.(i - 1) then
        invalid_arg "Metrics.histogram: limits must be strictly increasing")
    limits;
  find_or_create registry name ~kind:"histogram"
    ~make:(fun () ->
      let h =
        {
          limits = Array.copy limits;
          buckets = Array.make (Array.length limits + 1) 0;
          hstats = Stats.create ();
        }
      in
      (h, Histogram h))
    ~cast:(function Histogram h -> Some h | Counter _ | Gauge _ -> None)

let counter ?registry name =
  match registry with
  | Some r -> Pinned_c (counter_cell r name)
  | None ->
      let r = current () in
      Dyn_c { bname = name; bound = (r, counter_cell r name) }

let gauge ?registry name =
  match registry with
  | Some r -> Pinned_g (gauge_cell r name)
  | None ->
      let r = current () in
      Dyn_g { bname = name; bound = (r, gauge_cell r name) }

let histogram ?registry ?limits name =
  match registry with
  | Some r -> Pinned_h (histogram_cell ?limits r name)
  | None ->
      let r = current () in
      Dyn_h { blimits = limits; hb = { bname = name; bound = (r, histogram_cell ?limits r name) } }

let resolve b cell_of =
  let r, cell = b.bound in
  let cur = current () in
  if r == cur then cell
  else begin
    let cell = cell_of cur b.bname in
    b.bound <- (cur, cell);
    cell
  end

let ccell = function Pinned_c c -> c | Dyn_c b -> resolve b counter_cell

let gcell = function Pinned_g g -> g | Dyn_g b -> resolve b gauge_cell

let hcell = function
  | Pinned_h h -> h
  | Dyn_h { blimits; hb } -> resolve hb (fun r n -> histogram_cell ?limits:blimits r n)

let incr c =
  let c = ccell c in
  c.c <- c.c + 1

let add c n =
  let c = ccell c in
  c.c <- c.c + n

let count c = (ccell c).c

let set g v = (gcell g).g <- v

let set_max g v =
  let g = gcell g in
  if v > g.g then g.g <- v

let value g = (gcell g).g

let observe h x =
  let h = hcell h in
  Stats.add h.hstats x;
  let n = Array.length h.limits in
  let i = ref 0 in
  while !i < n && x > h.limits.(!i) do
    Stdlib.incr i
  done;
  h.buckets.(!i) <- h.buckets.(!i) + 1

let reset registry =
  Hashtbl.iter
    (fun _ i ->
      match i with
      | Counter c -> c.c <- 0
      | Gauge g -> g.g <- 0.0
      | Histogram h ->
          Array.fill h.buckets 0 (Array.length h.buckets) 0;
          h.hstats <- Stats.create ())
    registry.tbl

(* ------------------------------------------------------------------ *)
(* Shard merge                                                         *)
(* ------------------------------------------------------------------ *)

(* Fold a shard registry into [into]: counters and histogram buckets
   add, histogram moment accumulators combine via [Stats.merge], gauges
   keep the maximum (the cross-shard reading of [set_max] high-water
   marks; plain last-value gauges from concurrent shards have no
   sequential order to preserve).  Counter/bucket merging is exact and
   order-independent; merging shards in a deterministic order (Par does
   item order) makes the float fields deterministic too. *)
let merge_into ~into src =
  if into != src then
    Hashtbl.iter
      (fun name i ->
        match i with
        | Counter c ->
            let d = counter_cell into name in
            d.c <- d.c + c.c
        | Gauge g ->
            let d = gauge_cell into name in
            if g.g > d.g then d.g <- g.g
        | Histogram h ->
            let d = histogram_cell ~limits:h.limits into name in
            if Array.length d.buckets <> Array.length h.buckets || d.limits <> h.limits then
              invalid_arg
                (Printf.sprintf "Metrics.merge_into: histogram %s has mismatched limits" name);
            Array.iteri (fun k n -> d.buckets.(k) <- d.buckets.(k) + n) h.buckets;
            d.hstats <- Stats.merge d.hstats h.hstats)
      src.tbl

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist_view = {
  hcount : int;
  hsum : float;
  hmean : float;
  hstddev : float;
  hmin : float;
  hmax : float;
  hbuckets : (float * int) list;
}

type value = Counter_v of int | Gauge_v of float | Histogram_v of hist_view

type snapshot = (string * value) list

let view_of_histogram h =
  let n = Stats.count h.hstats in
  let mean = Stats.mean h.hstats in
  {
    hcount = n;
    hsum = mean *. float_of_int n;
    hmean = mean;
    hstddev = Stats.stddev h.hstats;
    hmin = (if n = 0 then 0.0 else Stats.min h.hstats);
    hmax = (if n = 0 then 0.0 else Stats.max h.hstats);
    hbuckets =
      List.init
        (Array.length h.buckets)
        (fun i ->
          let bound = if i < Array.length h.limits then h.limits.(i) else infinity in
          (bound, h.buckets.(i)));
  }

(* Prometheus-style bucket interpolation: find the bucket where the
   cumulative count reaches rank p% of the total, then interpolate
   linearly between its lower and upper bound.  The first bucket's lower
   bound is the histogram's observed minimum and the overflow bucket's
   upper bound its observed maximum, so the estimate never leaves the
   observed range. *)
let percentile_of_view v p =
  if p < 0.0 || p > 100.0 then invalid_arg "Metrics.percentile_of_view: p outside [0, 100]";
  if v.hcount = 0 then invalid_arg "Metrics.percentile_of_view: empty histogram";
  let rank = p /. 100.0 *. float_of_int v.hcount in
  let rec walk lower cum = function
    | [] -> v.hmax
    | (bound, c) :: rest ->
        let cum' = cum +. float_of_int c in
        if c > 0 && cum' >= rank then begin
          let hi = if bound = infinity then v.hmax else Float.min bound v.hmax in
          let lo = Float.max lower v.hmin in
          if hi <= lo then hi
          else lo +. ((hi -. lo) *. (Float.max 0.0 (rank -. cum) /. float_of_int c))
        end
        else walk bound cum' rest
  in
  walk neg_infinity 0.0 v.hbuckets

let snapshot registry =
  Hashtbl.fold
    (fun name i acc ->
      let v =
        match i with
        | Counter c -> Counter_v c.c
        | Gauge g -> Gauge_v g.g
        | Histogram h -> Histogram_v (view_of_histogram h)
      in
      (name, v) :: acc)
    registry.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find snap name = List.assoc_opt name snap

let diff ~before ~after =
  List.map
    (fun (name, v) ->
      let v' =
        match (v, find before name) with
        | Counter_v a, Some (Counter_v b) -> Counter_v (a - b)
        | Histogram_v a, Some (Histogram_v b) ->
            Histogram_v
              {
                a with
                hcount = a.hcount - b.hcount;
                hsum = a.hsum -. b.hsum;
                hbuckets =
                  List.map2
                    (fun (bound, ca) (_, cb) -> (bound, ca - cb))
                    a.hbuckets b.hbuckets;
              }
        | (Counter_v _ | Gauge_v _ | Histogram_v _), _ -> v
      in
      (name, v'))
    after

let pp_float ppf f =
  if Float.is_integer f && Float.abs f < 1e15 then Format.fprintf ppf "%.0f" f
  else Format.fprintf ppf "%g" f

let pp ppf snap =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_v c -> Format.fprintf ppf "%-36s %d@." name c
      | Gauge_v g -> Format.fprintf ppf "%-36s %a@." name pp_float g
      | Histogram_v h ->
          Format.fprintf ppf "%-36s count=%d mean=%a min=%a max=%a@." name h.hcount pp_float
            h.hmean pp_float h.hmin pp_float h.hmax)
    snap

(* Deterministic, dependency-free JSON. *)

let json_float f =
  if Float.is_nan f then "null"
  else if f = infinity then "\"+inf\""
  else if f = neg_infinity then "\"-inf\""
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json snap =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"metrics\": [\n";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string b ",\n";
      (match v with
      | Counter_v c ->
          Buffer.add_string b
            (Printf.sprintf "    {\"name\": \"%s\", \"kind\": \"counter\", \"value\": %d}"
               (json_escape name) c)
      | Gauge_v g ->
          Buffer.add_string b
            (Printf.sprintf "    {\"name\": \"%s\", \"kind\": \"gauge\", \"value\": %s}"
               (json_escape name) (json_float g))
      | Histogram_v h ->
          Buffer.add_string b
            (Printf.sprintf
               "    {\"name\": \"%s\", \"kind\": \"histogram\", \"count\": %d, \"sum\": %s, \
                \"mean\": %s, \"stddev\": %s, \"min\": %s, \"max\": %s, \"buckets\": [%s]}"
               (json_escape name) h.hcount (json_float h.hsum) (json_float h.hmean)
               (json_float h.hstddev) (json_float h.hmin) (json_float h.hmax)
               (String.concat ", "
                  (List.map
                     (fun (bound, c) ->
                       Printf.sprintf "{\"le\": %s, \"count\": %d}" (json_float bound) c)
                     h.hbuckets)))))
    snap;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b
