(* Flight recorder: a compact capture of the event stream a run
   executed, cheap enough to leave on in CI.  One record per fired
   engine event (plus net-level deliver/drop records), each carrying
   the deterministic span ids from Span so any record is causally
   attributable.  The recorder keeps a bounded ring of recent records,
   optionally streams everything to a JSONL sink, and folds every
   record into rolling 64-bit fingerprints — overall and per label
   prefix — so two runs can be compared for identical behaviour
   without retaining either stream. *)

type record = {
  seq : int;  (** 0-based position in the merged stream *)
  r_time : float;
  r_label : string;
  r_subject : string;
  r_trace_id : string option;
  r_span : int option;
  r_parent : int option;
}

(* --- fingerprint hashing --------------------------------------------- *)

(* FNV-1a over the record's semantic fields (time, label, subject,
   causality) — NOT the seq, which merge renumbers.  Records are folded
   into the stream hash with a multiply-accumulate so both content and
   order matter. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

(* Weyl-sequence constant (2^64 / phi): the stream-fold multiplier. *)
let stream_prime = 0x9E3779B97F4A7C15L

let h_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let h_string h s =
  let h = ref h in
  String.iter (fun c -> h := h_byte !h (Char.code c)) s;
  (* terminator so ("ab","c") and ("a","bc") hash differently *)
  h_byte !h 0xff

let h_int64 h x =
  let h = ref h in
  for i = 0 to 7 do
    h := h_byte !h (Int64.to_int (Int64.shift_right_logical x (8 * i)))
  done;
  !h

let record_hash r =
  let h = h_int64 fnv_offset (Int64.bits_of_float r.r_time) in
  let h = h_string h r.r_label in
  let h = h_string h r.r_subject in
  let h = h_string h (match r.r_trace_id with Some id -> id | None -> "") in
  let h = h_int64 h (Int64.of_int (match r.r_span with Some s -> s | None -> -1)) in
  h_int64 h (Int64.of_int (match r.r_parent with Some p -> p | None -> -1))

type fp = { mutable fp_hash : int64; mutable fp_count : int }

let fp_create () = { fp_hash = fnv_offset; fp_count = 0 }

let fp_add fp rhash =
  fp.fp_hash <- Int64.add (Int64.mul fp.fp_hash stream_prime) rhash;
  fp.fp_count <- fp.fp_count + 1

(* --- instances -------------------------------------------------------- *)

type t = {
  mutable count : int;  (* records accepted = next seq *)
  ring : record option array;
  mutable ring_next : int;
  mutable oc : out_channel option;
  overall : fp;
  prefixes : (string, fp) Hashtbl.t;
  prefix_memo : (string, string) Hashtbl.t;
  shard_mode : bool;
  mutable buffered : record list;  (* newest first; shard mode only *)
}

let create ?(ring = 256) ~shard_mode () =
  if ring <= 0 then invalid_arg "Recorder: ring capacity must be positive";
  {
    count = 0;
    ring = Array.make ring None;
    ring_next = 0;
    oc = None;
    overall = fp_create ();
    prefixes = Hashtbl.create 8;
    prefix_memo = Hashtbl.create 64;
    shard_mode;
    buffered = [];
  }

(* The enabled flag is shared across domains (flipped from the main
   domain while no workers run, like Prof); the instance records land
   in is domain-local.  The main domain records straight into the
   default instance; worker tasks record into a shard buffer installed
   by [capture] and replayed at the join point. *)

let on = ref false
let is_enabled () = !on

let default = create ~shard_mode:false ()
let current_key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> create ~shard_mode:true ())
let () = Domain.DLS.set current_key default
let current () = Domain.DLS.get current_key

let prefix_of t label =
  match Hashtbl.find_opt t.prefix_memo label with
  | Some p -> p
  | None ->
      let p = match String.index_opt label '.' with
        | Some i -> String.sub label 0 i
        | None -> label
      in
      Hashtbl.add t.prefix_memo label p;
      p

let bucket t label =
  let p = prefix_of t label in
  match Hashtbl.find_opt t.prefixes p with
  | Some fp -> fp
  | None ->
      let fp = fp_create () in
      Hashtbl.add t.prefixes p fp;
      fp

(* --- JSONL encoding --------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let record_to_json r =
  let b = Buffer.create 96 in
  Printf.bprintf b "{\"seq\": %d, \"time\": %.17g, \"label\": \"%s\", \"subject\": \"%s\"" r.seq
    r.r_time (json_escape r.r_label) (json_escape r.r_subject);
  (match r.r_trace_id with
  | Some id -> Printf.bprintf b ", \"trace_id\": \"%s\"" (json_escape id)
  | None -> ());
  (match r.r_span with Some s -> Printf.bprintf b ", \"span\": %d" s | None -> ());
  (match r.r_parent with Some p -> Printf.bprintf b ", \"parent\": %d" p | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

(* Scanner for the exact shape [record_to_json] emits; the causality
   keys are optional.  Same hand-rolled approach as Trace.entry_of_json
   — no JSON library in the dependency set. *)
let record_of_json line =
  let n = String.length line in
  let pos = ref 0 in
  let error = ref false in
  let skip_ws () = while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do incr pos done in
  let expect c =
    skip_ws ();
    if !pos < n && line.[!pos] = c then incr pos else error := true
  in
  let parse_string () =
    skip_ws ();
    if !pos >= n || line.[!pos] <> '"' then begin
      error := true;
      ""
    end
    else begin
      incr pos;
      let b = Buffer.create 16 in
      let fin = ref false in
      while (not !fin) && not !error do
        if !pos >= n then error := true
        else begin
          let c = line.[!pos] in
          incr pos;
          if c = '"' then fin := true
          else if c = '\\' then begin
            if !pos >= n then error := true
            else begin
              let e = line.[!pos] in
              incr pos;
              match e with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'u' ->
                  if !pos + 4 <= n then begin
                    (match int_of_string_opt ("0x" ^ String.sub line !pos 4) with
                    | Some code when code < 0x100 -> Buffer.add_char b (Char.chr code)
                    | Some _ | None -> error := true);
                    pos := !pos + 4
                  end
                  else error := true
              | _ -> error := true
            end
          end
          else Buffer.add_char b c
        end
      done;
      Buffer.contents b
    end
  in
  let parse_key key =
    expect '"';
    let k = String.length key in
    if (not !error) && !pos + k + 1 <= n && String.sub line (!pos - 1) (k + 2) = "\"" ^ key ^ "\"" then
      pos := !pos + k + 1
    else error := true;
    expect ':'
  in
  let parse_float () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      && (match line.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
    do
      incr pos
    done;
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some f -> f
    | None ->
        error := true;
        0.0
  in
  let attempt f =
    let saved = !pos in
    let v = f () in
    if !error then begin
      pos := saved;
      error := false;
      None
    end
    else Some v
  in
  expect '{';
  parse_key "seq";
  let seq = int_of_float (parse_float ()) in
  expect ',';
  parse_key "time";
  let r_time = parse_float () in
  expect ',';
  parse_key "label";
  let r_label = parse_string () in
  expect ',';
  parse_key "subject";
  let r_subject = parse_string () in
  let r_trace_id =
    attempt (fun () ->
        expect ',';
        parse_key "trace_id";
        parse_string ())
  in
  let parse_int key =
    attempt (fun () ->
        expect ',';
        parse_key key;
        int_of_float (parse_float ()))
  in
  let r_span = if r_trace_id = None then None else parse_int "span" in
  let r_parent = if r_span = None then None else parse_int "parent" in
  expect '}';
  if !error then None else Some { seq; r_time; r_label; r_subject; r_trace_id; r_span; r_parent }

let load_jsonl path =
  let ic = open_in path in
  let rec loop acc bad =
    match input_line ic with
    | line ->
        if String.trim line = "" then loop acc bad
        else (
          match record_of_json line with
          | Some r -> loop (r :: acc) bad
          | None -> loop acc (bad + 1))
    | exception End_of_file -> (List.rev acc, bad)
  in
  let res = loop [] 0 in
  close_in ic;
  res

(* --- recording -------------------------------------------------------- *)

(* [add] assigns the instance's next seq — shard replay renumbers, so a
   merged stream is indistinguishable from a sequential one. *)
let add t ~time ~label ~subject ~trace_id ~span ~parent =
  let r =
    { seq = t.count; r_time = time; r_label = label; r_subject = subject; r_trace_id = trace_id;
      r_span = span; r_parent = parent }
  in
  t.count <- t.count + 1;
  if t.shard_mode then t.buffered <- r :: t.buffered
  else begin
    fp_add t.overall (record_hash r);
    fp_add (bucket t label) (record_hash r);
    t.ring.(t.ring_next) <- Some r;
    t.ring_next <- (t.ring_next + 1) mod Array.length t.ring;
    match t.oc with
    | Some oc ->
        output_string oc (record_to_json r);
        output_char oc '\n'
    | None -> ()
  end

let record ~time ~label ?(subject = "") ?span () =
  if !on then begin
    let trace_id, sp, parent =
      match span with
      | Some s -> (Some s.Span.trace_id, Some s.Span.span, s.Span.parent)
      | None -> (None, None, None)
    in
    add (current ()) ~time ~label ~subject ~trace_id ~span:sp ~parent
  end

(* --- lifecycle --------------------------------------------------------- *)

let reset_instance t ?sink () =
  t.count <- 0;
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.ring_next <- 0;
  (match t.oc with Some oc -> close_out oc | None -> ());
  t.oc <- (match sink with Some path -> Some (open_out path) | None -> None);
  t.overall.fp_hash <- fnv_offset;
  t.overall.fp_count <- 0;
  Hashtbl.reset t.prefixes;
  t.buffered <- []

let enable ?ring ?sink () =
  (* A custom ring size needs a fresh instance; the common path reuses
     the domain's existing one so repeated enable/disable is cheap. *)
  (match ring with
  | Some n when n <> Array.length (current ()).ring ->
      Domain.DLS.set current_key (create ~ring:n ~shard_mode:false ())
  | _ -> ());
  reset_instance (current ()) ?sink ();
  on := true

let disable () =
  on := false;
  let t = current () in
  match t.oc with
  | Some oc ->
      t.oc <- None;
      close_out oc
  | None -> ()

let recent () =
  let t = current () in
  let cap = Array.length t.ring in
  let acc = ref [] in
  for i = cap - 1 downto 0 do
    match t.ring.((t.ring_next + i) mod cap) with Some r -> acc := r :: !acc | None -> ()
  done;
  !acc

let records () = (current ()).count

(* --- fingerprints ------------------------------------------------------ *)

type fingerprint = {
  fpr_records : int;
  fpr_hash : int64;
  fpr_prefixes : (string * int * int64) list;  (** (prefix, records, hash), sorted by prefix *)
}

let fingerprint () =
  let t = current () in
  let prefixes =
    Hashtbl.fold (fun p fp acc -> (p, fp.fp_count, fp.fp_hash) :: acc) t.prefixes []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  { fpr_records = t.overall.fp_count; fpr_hash = t.overall.fp_hash; fpr_prefixes = prefixes }

let pp_fingerprint ppf f =
  Format.fprintf ppf "fingerprint %016Lx over %d records@." f.fpr_hash f.fpr_records;
  List.iter
    (fun (p, count, hash) -> Format.fprintf ppf "  %-8s %016Lx over %d records@." p hash count)
    f.fpr_prefixes

(* --- shard capture and merge ------------------------------------------- *)

type shard = { srecs : record list  (** oldest first *) }

let capture f =
  if not !on then (f (), { srecs = [] })
  else begin
    let prev = current () in
    let buf = create ~ring:1 ~shard_mode:true () in
    Domain.DLS.set current_key buf;
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set current_key prev)
      (fun () ->
        let x = f () in
        (x, { srecs = List.rev buf.buffered }))
  end

let merge shard =
  if !on then
    let t = current () in
    List.iter
      (fun r ->
        add t ~time:r.r_time ~label:r.r_label ~subject:r.r_subject ~trace_id:r.r_trace_id
          ~span:r.r_span ~parent:r.r_parent)
      shard.srecs
