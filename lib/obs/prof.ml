(* A per-domain tree of sections.  The same section name under two
   different parents is two nodes, so total/self accounting stays a
   strict tree and folded stacks come out for free.  All mutation is
   behind the [on] flag: the disabled path of [span] is one load, one
   branch and a tail call.

   Each domain builds into its own tree (domain-local state), so
   workers can profile concurrently without racing; a Par task wraps
   its work in [capture] and the detached subtree is grafted back into
   the submitting domain's tree with [merge] at the join point.  The
   [on] flag itself is shared — it is flipped by the main domain while
   no workers run, and the pool's task hand-off (mutex) publishes it. *)

type node = {
  name : string;
  mutable count : int;
  mutable total_s : float;
  mutable total_bytes : float;
  children : (string, node) Hashtbl.t;
  (* first-entered order, reversed; hashtable iteration order is
     insertion-dependent but not specified, and reports must be
     deterministic for a deterministic run. *)
  mutable order : string list;
}

type tree = node

let make_node name =
  { name; count = 0; total_s = 0.0; total_bytes = 0.0; children = Hashtbl.create 8; order = [] }

type pstate = { mutable proot : node; mutable pcur : node }

let state_key : pstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let r = make_node "" in
      { proot = r; pcur = r })

let state () = Domain.DLS.get state_key

let on = ref false

let is_enabled () = !on

let reset () =
  let st = state () in
  st.proot <- make_node "";
  st.pcur <- st.proot

let enable () =
  reset ();
  on := true

let disable () = on := false

let child_of parent name =
  match Hashtbl.find_opt parent.children name with
  | Some n -> n
  | None ->
      let n = make_node name in
      Hashtbl.add parent.children name n;
      parent.order <- name :: parent.order;
      n

let span name f =
  if not !on then f ()
  else begin
    let st = state () in
    let parent = st.pcur in
    let node = child_of parent name in
    node.count <- node.count + 1;
    st.pcur <- node;
    let t0 = Unix.gettimeofday () in
    let a0 = Gc.allocated_bytes () in
    Fun.protect
      ~finally:(fun () ->
        node.total_s <- node.total_s +. (Unix.gettimeofday () -. t0);
        node.total_bytes <- node.total_bytes +. (Gc.allocated_bytes () -. a0);
        st.pcur <- parent)
      f
  end

(* --- Shard capture and merge ----------------------------------------- *)

let capture f =
  if not !on then (f (), make_node "")
  else begin
    let st = state () in
    let parent = st.pcur in
    let detached = make_node "" in
    st.pcur <- detached;
    let x = Fun.protect ~finally:(fun () -> st.pcur <- parent) f in
    (x, detached)
  end

let rec graft dst (src : node) =
  let d = child_of dst src.name in
  d.count <- d.count + src.count;
  d.total_s <- d.total_s +. src.total_s;
  d.total_bytes <- d.total_bytes +. src.total_bytes;
  List.iter (fun name -> graft d (Hashtbl.find src.children name)) (List.rev src.order)

let merge_tree ~into t = List.iter (fun name -> graft into (Hashtbl.find t.children name)) (List.rev t.order)

let merge t = if !on then merge_tree ~into:(state ()).pcur t

(* --- Reporting ------------------------------------------------------- *)

type row = {
  path : string list;
  count : int;
  total_s : float;
  self_s : float;
  total_bytes : float;
  self_bytes : float;
}

let children_in_order (node : node) : node list =
  List.rev_map (Hashtbl.find node.children) node.order

let rows_of_node root =
  let acc = ref [] in
  let rec walk path (node : node) =
    let kids = children_in_order node in
    let kid_s = List.fold_left (fun s (k : node) -> s +. k.total_s) 0.0 kids in
    let kid_b = List.fold_left (fun s (k : node) -> s +. k.total_bytes) 0.0 kids in
    if node.name <> "" then begin
      let path = path @ [ node.name ] in
      acc :=
        {
          path;
          count = node.count;
          total_s = node.total_s;
          self_s = Float.max 0.0 (node.total_s -. kid_s);
          total_bytes = node.total_bytes;
          self_bytes = Float.max 0.0 (node.total_bytes -. kid_b);
        }
        :: !acc;
      List.iter (walk path) kids
    end
    else List.iter (walk path) kids
  in
  walk [] root;
  List.rev !acc

let rows () = rows_of_node (state ()).proot

let tree_rows t = rows_of_node t

let pp_seconds ppf s =
  if s >= 1.0 then Format.fprintf ppf "%8.3fs" s
  else if s >= 1e-3 then Format.fprintf ppf "%7.3fms" (s *. 1e3)
  else Format.fprintf ppf "%7.1fus" (s *. 1e6)

let pp_bytes ppf b =
  if Float.abs b >= 1048576.0 then Format.fprintf ppf "%7.1fMB" (b /. 1048576.0)
  else if Float.abs b >= 1024.0 then Format.fprintf ppf "%7.1fkB" (b /. 1024.0)
  else Format.fprintf ppf "%7.0fB " b

let pp_rows ppf rows =
  Format.fprintf ppf "%-40s %10s %9s %9s %9s %9s@." "section" "count" "total" "self" "alloc"
    "self-alloc";
  List.iter
    (fun r ->
      let depth = List.length r.path - 1 in
      let name =
        String.make (2 * depth) ' ' ^ (match List.rev r.path with n :: _ -> n | [] -> "")
      in
      Format.fprintf ppf "%-40s %10d %a %a %a %a@." name r.count pp_seconds r.total_s pp_seconds
        r.self_s pp_bytes r.total_bytes pp_bytes r.self_bytes)
    rows

let pp ppf () = pp_rows ppf (rows ())

(* --- JSONL round-trip ------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let row_to_json r =
  Printf.sprintf
    "{\"path\": \"%s\", \"count\": %d, \"total_s\": %.17g, \"self_s\": %.17g, \"total_bytes\": \
     %.17g, \"self_bytes\": %.17g}"
    (json_escape (String.concat ";" r.path))
    r.count r.total_s r.self_s r.total_bytes r.self_bytes

(* Scanner for exactly the shape [row_to_json] emits: fixed key order,
   escaped string path, plain numbers. *)
let row_of_json line =
  let n = String.length line in
  let pos = ref 0 in
  let error = ref false in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if !pos < n && line.[!pos] = c then incr pos else error := true
  in
  let literal s =
    skip_ws ();
    let k = String.length s in
    if !pos + k <= n && String.sub line !pos k = s then pos := !pos + k else error := true
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 32 in
    let fin = ref false in
    while (not !fin) && not !error do
      if !pos >= n then error := true
      else begin
        let c = line.[!pos] in
        incr pos;
        if c = '"' then fin := true
        else if c = '\\' then begin
          if !pos >= n then error := true
          else begin
            let e = line.[!pos] in
            incr pos;
            match e with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | 'n' -> Buffer.add_char b '\n'
            | 'u' ->
                if !pos + 4 <= n then begin
                  (match int_of_string_opt ("0x" ^ String.sub line !pos 4) with
                  | Some code when code < 0x100 -> Buffer.add_char b (Char.chr code)
                  | Some _ | None -> error := true);
                  pos := !pos + 4
                end
                else error := true
            | _ -> error := true
          end
        end
        else Buffer.add_char b c
      end
    done;
    Buffer.contents b
  in
  let parse_number () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      &&
      match line.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some f -> f
    | None ->
        error := true;
        0.0
  in
  let field key =
    literal ("\"" ^ key ^ "\"");
    expect ':'
  in
  expect '{';
  field "path";
  let path = parse_string () in
  expect ',';
  field "count";
  let count = parse_number () in
  expect ',';
  field "total_s";
  let total_s = parse_number () in
  expect ',';
  field "self_s";
  let self_s = parse_number () in
  expect ',';
  field "total_bytes";
  let total_bytes = parse_number () in
  expect ',';
  field "self_bytes";
  let self_bytes = parse_number () in
  expect '}';
  if !error then None
  else
    Some
      {
        path = String.split_on_char ';' path;
        count = int_of_float count;
        total_s;
        self_s;
        total_bytes;
        self_bytes;
      }

let to_jsonl () =
  let b = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string b (row_to_json r);
      Buffer.add_char b '\n')
    (rows ());
  Buffer.contents b

let write_jsonl file =
  let oc = open_out file in
  output_string oc (to_jsonl ());
  close_out oc

let load_jsonl_counted file =
  let ic = open_in file in
  let acc = ref [] in
  let bad = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match row_of_json line with Some r -> acc := r :: !acc | None -> incr bad
     done
   with End_of_file -> ());
  close_in ic;
  (List.rev !acc, !bad)

let load_jsonl file = fst (load_jsonl_counted file)

let folded rows =
  let b = Buffer.create 1024 in
  List.iter
    (fun r ->
      let us = int_of_float (Float.round (r.self_s *. 1e6)) in
      if us > 0 then Printf.bprintf b "%s %d\n" (String.concat ";" r.path) us)
    rows;
  Buffer.contents b

let find rows path = List.find_opt (fun r -> r.path = path) rows
