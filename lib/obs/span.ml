type t = { trace_id : string; span : int; parent : int option }

(* Span ids are allocated per trace id from a minter: a plain counter
   table, no wall clock, so identical seeded runs mint identical ids in
   identical order. *)
type minter = { next : (string, int) Hashtbl.t }

let create_minter () = { next = Hashtbl.create 64 }

let default = create_minter ()

let reset ?(minter = default) () = Hashtbl.reset minter.next

let alloc minter trace_id =
  let n = Option.value ~default:0 (Hashtbl.find_opt minter.next trace_id) in
  Hashtbl.replace minter.next trace_id (n + 1);
  n

let root ?(minter = default) trace_id = { trace_id; span = alloc minter trace_id; parent = None }

let child ?(minter = default) p =
  { trace_id = p.trace_id; span = alloc minter p.trace_id; parent = Some p.span }

let claim_id ~owner prefix = Printf.sprintf "claim:%d:%s" owner prefix

let group_id group = "group:" ^ group

let join_id ~group ~member = Printf.sprintf "join:%s:%s" group member

let kind t =
  match String.index_opt t.trace_id ':' with
  | Some i -> String.sub t.trace_id 0 i
  | None -> t.trace_id

let pp ppf t =
  match t.parent with
  | None -> Format.fprintf ppf "%s#%d" t.trace_id t.span
  | Some p -> Format.fprintf ppf "%s#%d<-%d" t.trace_id t.span p
