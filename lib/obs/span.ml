type t = { trace_id : string; span : int; parent : int option }

(* Span ids are allocated per trace id from a minter: a plain counter
   table, no wall clock, so identical seeded runs mint identical ids in
   identical order. *)
type minter = { next : (string, int) Hashtbl.t }

let create_minter () = { next = Hashtbl.create 64 }

let default = create_minter ()

(* The ambient minter is domain-local (counter tables are plain
   Hashtbls — sharing one across domains would race).  The main domain
   gets [default]; a [Par] task installs a fresh minter via
   [with_minter], so the span ids a task mints are a deterministic
   function of the task alone, not of which domain ran it or what ran
   before — fingerprints are identical at any [--jobs]. *)
let current_key : minter Domain.DLS.key = Domain.DLS.new_key create_minter
let () = Domain.DLS.set current_key default
let current () = Domain.DLS.get current_key

let with_minter m f =
  let prev = current () in
  Domain.DLS.set current_key m;
  Fun.protect ~finally:(fun () -> Domain.DLS.set current_key prev) f

let reset ?minter () =
  let m = match minter with Some m -> m | None -> current () in
  Hashtbl.reset m.next

let alloc minter trace_id =
  let n = Option.value ~default:0 (Hashtbl.find_opt minter.next trace_id) in
  Hashtbl.replace minter.next trace_id (n + 1);
  n

let root ?minter trace_id =
  let m = match minter with Some m -> m | None -> current () in
  { trace_id; span = alloc m trace_id; parent = None }

let child ?minter p =
  let m = match minter with Some m -> m | None -> current () in
  { trace_id = p.trace_id; span = alloc m p.trace_id; parent = Some p.span }

let claim_id ~owner prefix = Printf.sprintf "claim:%d:%s" owner prefix

let group_id group = "group:" ^ group

let join_id ~group ~member = Printf.sprintf "join:%s:%s" group member

let kind t =
  match String.index_opt t.trace_id ':' with
  | Some i -> String.sub t.trace_id 0 i
  | None -> t.trace_id

let pp ppf t =
  match t.parent with
  | None -> Format.fprintf ppf "%s#%d" t.trace_id t.span
  | Some p -> Format.fprintf ppf "%s#%d<-%d" t.trace_id t.span p
