(** Flight recorder: deterministic event-stream capture and run
    fingerprints.

    When enabled, the engine's dispatch point and the transport's
    deliver/drop paths append one {!record} per observed event.  Each
    record carries the event's sim time, label, a short subject string
    and the deterministic span ids from {!Span}, so any record is
    causally attributable with [Trace_report].  The recorder keeps a
    bounded ring of recent records, optionally streams every record to
    a JSONL file, and folds each one into rolling 64-bit fingerprints
    — overall and per label prefix ([masc.*], [bgp.*], [bgmp.*],
    [net.*], ...) — so two runs can be compared for behavioural
    identity without retaining either stream.

    Disabled-path cost is one flag test ({!is_enabled} guards the call
    sites, the same pattern as the profiler and the sampler), so the
    instrumented hot paths are unchanged when recording is off.

    The enabled flag is shared across domains (flip it from the main
    domain while no workers run); the instance records land in is
    domain-local.  A [Par] task wraps its work in {!capture}; the
    buffered shard is replayed through the submitting domain's
    recorder with {!merge} at the join point, in task order, with
    sequence numbers reassigned — so the merged stream, and therefore
    the fingerprint, is byte-identical at any [--jobs]. *)

type record = {
  seq : int;  (** 0-based position in the (merged) stream *)
  r_time : float;  (** sim time the event fired *)
  r_label : string;  (** event label, e.g. [net.deliver.bgp] *)
  r_subject : string;  (** short free-form subject, e.g. ["3->4"] *)
  r_trace_id : string option;
  r_span : int option;
  r_parent : int option;
}

val is_enabled : unit -> bool

val enable : ?ring:int -> ?sink:string -> unit -> unit
(** Start recording on this domain with fresh state: empty ring
    (capacity [ring], default 256), zeroed fingerprints, and — when
    [sink] is given — a JSONL file (truncated) receiving every record.
    @raise Invalid_argument on [ring <= 0]. *)

val disable : unit -> unit
(** Stop recording and close the sink.  Ring and fingerprints remain
    readable until the next {!enable}. *)

val record : time:float -> label:string -> ?subject:string -> ?span:Span.t -> unit -> unit
(** Append one record (no-op when disabled — but guard call sites with
    {!is_enabled} so argument construction is skipped too). *)

val recent : unit -> record list
(** The ring's contents, oldest first. *)

val records : unit -> int
(** Records accepted since {!enable}, independent of ring capacity. *)

(** {1 Fingerprints} *)

type fingerprint = {
  fpr_records : int;
  fpr_hash : int64;
  fpr_prefixes : (string * int * int64) list;
      (** per label-prefix (first dot-separated component):
          (prefix, records, hash), sorted by prefix *)
}

val fingerprint : unit -> fingerprint
(** Rolling FNV-1a/multiply-accumulate hash of every record so far.
    Covers each record's time, label, subject and causality fields —
    not its seq — and is order-sensitive. *)

val pp_fingerprint : Format.formatter -> fingerprint -> unit
(** Overall line plus one indented line per prefix, hashes as 16-digit
    hex. *)

(** {1 Shard capture and merge} *)

type shard
(** Records buffered by one parallel task, oldest first. *)

val capture : (unit -> 'a) -> 'a * shard
(** Run the thunk with records buffered into a fresh shard on this
    domain instead of the live recorder.  When disabled the thunk runs
    untouched and the shard is empty. *)

val merge : shard -> unit
(** Replay a captured shard through this domain's recorder — records
    are renumbered, hashed and sunk exactly as if recorded here, so
    merging shards in task order reproduces the sequential stream. *)

(** {1 JSONL} *)

val record_to_json : record -> string
(** One JSON object, no trailing newline. *)

val record_of_json : string -> record option

val load_jsonl : string -> record list * int
(** Records (file order) plus the count of malformed non-blank lines
    skipped. *)
