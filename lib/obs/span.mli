(** Causal spans: the identity a protocol event chain carries.

    A span names a {e trace id} — the allocation, group, or join the
    chain is about — plus a span id unique within that trace id and an
    optional parent span id.  Threading spans through the protocol
    messages lets a MASC claim, the collisions it provokes, the G-RIB
    routes it becomes, and the BGMP joins that consume those routes all
    be stitched back into one causal chain from a flat trace.

    Span ids come from a {!minter}: a monotone counter per trace id.
    There is no wall clock anywhere, so identical seeded runs mint
    identical spans. *)

type t = { trace_id : string; span : int; parent : int option }

type minter

val create_minter : unit -> minter

val default : minter
(** The process-wide minter used when [?minter] is omitted. *)

val reset : ?minter:minter -> unit -> unit
(** Forget all counters (harness entry points reset the default minter
    alongside the default metrics registry, keeping runs comparable). *)

val root : ?minter:minter -> string -> t
(** A fresh span for [trace_id] with no parent. *)

val child : ?minter:minter -> t -> t
(** A fresh span under the same trace id, parented on the argument. *)

(** {1 Trace-id naming conventions} *)

val claim_id : owner:int -> string -> string
(** ["claim:<owner>:<prefix>"] — a MASC prefix claim's chain. *)

val group_id : string -> string
(** ["group:<addr>"] — a group's chain when no claim chain covers it
    (standalone BGMP fabrics with static routes). *)

val join_id : group:string -> member:string -> string
(** ["join:<addr>:<member>"] — an individual join identity. *)

val kind : t -> string
(** The trace-id prefix before the first [':'] ("claim", "group", ...). *)

val pp : Format.formatter -> t -> unit
