(** Causal spans: the identity a protocol event chain carries.

    A span names a {e trace id} — the allocation, group, or join the
    chain is about — plus a span id unique within that trace id and an
    optional parent span id.  Threading spans through the protocol
    messages lets a MASC claim, the collisions it provokes, the G-RIB
    routes it becomes, and the BGMP joins that consume those routes all
    be stitched back into one causal chain from a flat trace.

    Span ids come from a {!minter}: a monotone counter per trace id.
    There is no wall clock anywhere, so identical seeded runs mint
    identical spans. *)

type t = { trace_id : string; span : int; parent : int option }

type minter

val create_minter : unit -> minter

val default : minter
(** The main domain's ambient minter.  When [?minter] is omitted,
    {!root} and {!child} use the {e current} domain-local minter:
    [default] on the main domain, whatever {!with_minter} installed
    inside a parallel task.  Counter tables are plain hash tables, so
    the ambient minter is never shared across domains. *)

val with_minter : minter -> (unit -> 'a) -> 'a
(** Run the thunk with [minter] as this domain's ambient minter
    (restored afterwards, exceptions included).  [Par.with_shard]
    installs a fresh minter per task, making a task's span ids a
    deterministic function of the task alone — identical at any
    [--jobs]. *)

val reset : ?minter:minter -> unit -> unit
(** Forget all counters — of the ambient minter when [?minter] is
    omitted (harness entry points reset it alongside the default
    metrics registry, keeping runs comparable). *)

val root : ?minter:minter -> string -> t
(** A fresh span for [trace_id] with no parent. *)

val child : ?minter:minter -> t -> t
(** A fresh span under the same trace id, parented on the argument. *)

(** {1 Trace-id naming conventions} *)

val claim_id : owner:int -> string -> string
(** ["claim:<owner>:<prefix>"] — a MASC prefix claim's chain. *)

val group_id : string -> string
(** ["group:<addr>"] — a group's chain when no claim chain covers it
    (standalone BGMP fabrics with static routes). *)

val join_id : group:string -> member:string -> string
(** ["join:<addr>:<member>"] — an individual join identity. *)

val kind : t -> string
(** The trace-id prefix before the first [':'] ("claim", "group", ...). *)

val pp : Format.formatter -> t -> unit
