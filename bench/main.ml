(* Benchmark harness.

   Part 1 — Bechamel micro-benchmarks of the hot paths: routing-table
   lookups, the claim algorithm's free-space search, shortest-path and
   tree construction at the paper's topology scale, and BGMP
   join/data-plane processing.

   Part 2 — figure regeneration: runs the Figure-2 and Figure-4
   experiments end-to-end and prints the same series the paper plots
   (also available individually via bin/main.exe).

   Methodology: every reported number is the median of [repeat_runs]
   independent measurements taken after [warmup_runs] discarded ones,
   with the min/max and spread printed alongside — a single noisy run
   can neither hide nor fake a regression.  The Bechamel session is
   repeated whole; for the figures, the printed regeneration doubles as
   the warmup and the timed repeats run silently.

   Besides the human-readable report, the harness writes BENCH_10.json
   (per-benchmark ns/run medians with min/max/spread, wall-clock
   medians for the figure regenerations, the micro-benchmark trajectory
   against the BENCH_9.json baseline, the live invariant-check overhead
   measured by running the Figure-4 experiment and a scaled Figure-2
   run with the checks off and on, the profiler's disabled- and
   enabled-path cost on the Figure-4 experiment with the per-kernel
   span breakdown of the profiled run, a parallel section timing the
   Figure-4 experiment at --jobs 1 vs --jobs 8 with the machine's core
   count, the flight recorder's disabled- and enabled-path cost on the
   Figure-4 experiment together with the event-stream fingerprints of
   recorder-enabled reference runs, the beacon measurement soak —
   hundreds of domains, millions
   of probe messages through the BGMP data path under seeded loss and
   mid-window link churn, with probe throughput, the aggregate delivery
   matrix, and the data-path profile rows — the fault-scenario
   explorer's campaign throughput at --jobs 1 vs 8 with its shrink-run
   counts and the invariant-oracle monitor's monitored-vs-plain cost,
   the convergence times the watermarks report, and the
   metrics-registry counters accumulated across the regenerations) into
   the working directory so successive PRs can track the performance
   trajectory.

   `--smoke` additionally gates on bench/perf_budget.json: scaled
   fig2/fig4 medians must stay under the checked-in budgets (~2.5x a
   healthy median); refresh with `--smoke --write-budget` after a
   deliberate performance change. *)

module M = Metrics
module Sim_time = Time
(* [Bechamel]/[Toolkit] shadow some of our module names (e.g. [Time]);
   the registry and simulated time are reached through these aliases
   below the opens. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let rng = Rng.create 42

let routing_table =
  (* A G-RIB-like trie with 1000 group routes of mixed specificity. *)
  let trie = Prefix_trie.create () in
  for i = 0 to 999 do
    let base = 0xE0000000 lor (Rng.int rng 0x0FFFFFFF land 0x0FFFFF00) in
    Prefix_trie.add trie (Prefix.make base (16 + (i mod 12))) i
  done;
  trie

let lookup_addr () = 0xE0000000 lor Rng.int rng 0x0FFFFFFF

let claim_arena =
  let space = Address_space.create () in
  Address_space.add_cover space Prefix.class_d;
  for i = 0 to 99 do
    let base = 0xE0000000 lor (Rng.int rng 0x0FFFFFFF land 0x0FFFF000) in
    let candidate = Prefix.make base 22 in
    if Address_space.is_free space candidate then Address_space.register space ~owner:i candidate
  done;
  space

let big_topo = Gen.power_law ~rng:(Rng.create 7) ~n:3326 ~m:2

let tree_members = Array.to_list (Rng.sample_without_replacement (Rng.create 9) 1000 3326)

let fig3_fabric () =
  let topo = Gen.figure3 () in
  let engine = Engine.create () in
  let b = Option.get (Topo.find_by_name topo "B") in
  let paths = Spf.bfs topo b in
  let route_to_root d _g =
    if d = b then Bgmp_fabric.Root_here
    else
      match Spf.next_hop_toward topo paths d with
      | Some nh -> Bgmp_fabric.Via nh
      | None -> Bgmp_fabric.Unroutable
  in
  (engine, topo, Bgmp_fabric.create ~engine ~topo ~route_to_root ())

let benchmarks =
  Test.make_grouped ~name:"masc-bgmp"
    [
      Test.make ~name:"trie-longest-match-1k-routes"
        (Staged.stage (fun () -> ignore (Prefix_trie.longest_match routing_table (lookup_addr ()))));
      Test.make ~name:"free-space-choose-claim-100-claims"
        (Staged.stage (fun () -> ignore (Address_space.choose_claim claim_arena ~rng ~want_len:24)));
      Test.make ~name:"claim-policy-decision"
        (Staged.stage (fun () ->
             ignore
               (Claim_policy.decide ~params:Claim_policy.default_params ~space:claim_arena
                  ~claims:
                    [
                      {
                        Claim_policy.prefix = Prefix.of_string "224.0.0.0/22";
                        active = true;
                        used = 1024;
                      };
                    ]
                  ~need:256)));
      Test.make ~name:"bfs-3326-node-graph"
        (Staged.stage (fun () -> ignore (Spf.bfs big_topo (Rng.int rng 3326))));
      Test.make ~name:"shared-tree-build-1000-members"
        (Staged.stage (fun () -> ignore (Shared_tree.build big_topo ~root:0 ~members:tree_members)));
      Test.make ~name:"path-eval-100-receivers"
        (Staged.stage (fun () ->
             let receivers = Rng.sample_without_replacement rng 100 3326 in
             ignore
               (Path_eval.evaluate big_topo
                  { Path_eval.source = Rng.int rng 3326; root = receivers.(0); receivers })));
      Test.make ~name:"bgmp-join-leave-cycle"
        (Staged.stage (fun () ->
             let engine, topo, fabric = fig3_fabric () in
             let g = Ipv4.of_string "224.0.128.1" in
             let dom n = Option.get (Topo.find_by_name topo n) in
             List.iter
               (fun n -> Bgmp_fabric.host_join fabric ~host:(Host_ref.make (dom n) 0) ~group:g)
               [ "C"; "D"; "F"; "H" ];
             Engine.run_until_idle engine;
             List.iter
               (fun n -> Bgmp_fabric.host_leave fabric ~host:(Host_ref.make (dom n) 0) ~group:g)
               [ "C"; "D"; "F"; "H" ];
             Engine.run_until_idle engine));
      Test.make ~name:"kampai-grow-12-blocks"
        (Staged.stage (fun () ->
             let blocks =
               List.init 12 (fun i -> Kampai.block_of_prefix (Prefix.make (0xE0000000 lor (i lsl 10)) 24))
             in
             match blocks with
             | b :: others -> ignore (Kampai.grow b ~others)
             | [] -> ()));
      Test.make ~name:"aggregated-entry-count-64-groups"
        (Staged.stage
           (let r = Bgmp_router.create ~id:0 ~domain:0 ~name:"bench" in
            Bgmp_router.set_classify_root r (fun _ -> Bgmp_router.External 9);
            for i = 0 to 63 do
              ignore (Bgmp_router.handle_join r ~group:(0xE0010000 lor i) ~from:(Bgmp_router.Peer 3))
            done;
            fun () -> ignore (Bgmp_router.aggregated_entry_count r)));
      Test.make ~name:"bgmp-data-fanout-5-members"
        (Staged.stage (fun () ->
             let engine, topo, fabric = fig3_fabric () in
             let g = Ipv4.of_string "224.0.128.1" in
             let dom n = Option.get (Topo.find_by_name topo n) in
             List.iter
               (fun n -> Bgmp_fabric.host_join fabric ~host:(Host_ref.make (dom n) 0) ~group:g)
               [ "B"; "C"; "D"; "F"; "H" ];
             Engine.run_until_idle engine;
             ignore (Bgmp_fabric.send fabric ~source:(Host_ref.make (dom "E") 0) ~group:g);
             Engine.run_until_idle engine));
    ]

(* ------------------------------------------------------------------ *)
(* Measurement methodology                                             *)
(* ------------------------------------------------------------------ *)

let warmup_runs = 1
let repeat_runs = 3

(* Median with the spread of the repeats around it. *)
type mstat = { med : float; mn : float; mx : float; spread_pct : float }

let mstat_of samples =
  let a = Array.of_list samples in
  if Array.length a = 0 then invalid_arg "mstat_of: no samples";
  Array.sort compare a;
  let n = Array.length a in
  let med = if n mod 2 = 1 then a.(n / 2) else 0.5 *. (a.((n / 2) - 1) +. a.(n / 2)) in
  let mn = a.(0) and mx = a.(n - 1) in
  let spread_pct = if med > 0.0 then (mx -. mn) /. med *. 100.0 else 0.0 in
  { med; mn; mx; spread_pct }

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Wall-clock median of [repeat_runs] calls (the caller is responsible
   for any warmup — for the figures the printed regeneration is it). *)
let timed_median f =
  let samples = ref [] in
  for _ = 1 to repeat_runs do
    let _, s = timed f in
    samples := s :: !samples
  done;
  mstat_of !samples

let run_benchmarks_once () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] benchmarks in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name result acc ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> (name, est) :: acc
      | Some _ | None -> acc)
    results []

let run_benchmarks () =
  for _ = 1 to warmup_runs do
    ignore (run_benchmarks_once ())
  done;
  let sessions = ref [] in
  for _ = 1 to repeat_runs do
    sessions := run_benchmarks_once () :: !sessions
  done;
  let names =
    List.sort_uniq compare (List.concat_map (fun s -> List.map fst s) !sessions)
  in
  List.filter_map
    (fun name ->
      match List.filter_map (List.assoc_opt name) !sessions with
      | [] ->
          Format.printf "%-44s (no estimate)@." name;
          None
      | samples ->
          let s = mstat_of samples in
          Format.printf "%-44s %14.1f ns/run  [%.1f .. %.1f, %.1f%% spread]@." name s.med s.mn
            s.mx s.spread_pct;
          Some (name, s))
    names

(* ------------------------------------------------------------------ *)
(* Figure regeneration                                                 *)
(* ------------------------------------------------------------------ *)

let fig2_result = ref None

let run_fig2 () =
  Format.printf "@.=== Figure 2: MASC utilization and G-RIB size (50x50, 800 days) ===@.";
  let r = Allocation_sim.run Allocation_sim.default_params in
  fig2_result := Some r;
  let steady = Allocation_sim.steady_state r ~from_day:400.0 in
  let avg f = Stats.mean_of (Array.of_list (List.map f steady)) in
  Format.printf "#   day  utilization  grib-avg  grib-max@.";
  Array.iter
    (fun (s : Allocation_sim.sample) ->
      if int_of_float s.Allocation_sim.day mod 25 = 0 then
        Format.printf "%7.0f %10.3f %9.1f %8d@." s.Allocation_sim.day s.Allocation_sim.utilization
          s.Allocation_sim.grib_avg s.Allocation_sim.grib_max)
    r.Allocation_sim.samples;
  Format.printf
    "steady state: utilization %.3f (paper ~0.50), G-RIB avg %.1f (paper ~175), max %.1f (paper \
     <=180), blocks %.0f (paper 37500)@."
    (avg (fun s -> s.Allocation_sim.utilization))
    (avg (fun s -> s.Allocation_sim.grib_avg))
    (avg (fun s -> float_of_int s.Allocation_sim.grib_max))
    (avg (fun s -> float_of_int s.Allocation_sim.outstanding_blocks));
  Format.printf "globally advertised prefix set converged on day %.1f@."
    r.Allocation_sim.top_converged_day

let run_fig4 () =
  Format.printf "@.=== Figure 4: path-length overhead vs SPT (3326 nodes) ===@.";
  let r = Tree_experiment.run Tree_experiment.default_params in
  Format.printf "# size  uni-avg uni-max  bi-avg bi-max  hy-avg hy-max@.";
  List.iter
    (fun (pt : Tree_experiment.point) ->
      Format.printf "%6d %8.2f %7.2f %7.2f %6.2f %7.2f %6.2f@." pt.Tree_experiment.group_size
        pt.Tree_experiment.uni_avg pt.Tree_experiment.uni_max pt.Tree_experiment.bi_avg
        pt.Tree_experiment.bi_max pt.Tree_experiment.hy_avg pt.Tree_experiment.hy_max)
    r.Tree_experiment.points;
  Format.printf
    "paper, in-text: uni avg ~2x / max up to 6x; bi avg <1.3x / max 4.5x; hy avg <1.2x / max 4x@."

(* Silent timed repeats of a figure regeneration; the printed run above
   served as the warmup. *)
let figure_stat name f =
  let s = timed_median f in
  Format.printf "%-20s %7.3f s median  [%.3f .. %.3f, %.1f%% spread]@." name s.med s.mn s.mx
    s.spread_pct;
  (name, s)

(* The Figure-4 experiment through the Par pool at --jobs 1 vs
   --jobs 8.  On a single-core machine the pool degrades to pinned
   round-robin over one core and the speedup hovers around 1.0x — the
   point of recording the core count next to the ratio. *)
let parallel_report () =
  Format.printf "@.=== Parallel fig4 (--jobs 1 vs --jobs 8) ===@.";
  let run jobs () =
    ignore (Tree_experiment.run { Tree_experiment.default_params with Tree_experiment.jobs })
  in
  ignore (timed (run 8));
  (* warm the worker pool and both code paths *)
  let j1 = timed_median (run 1) in
  let j8 = timed_median (run 8) in
  let cores = Stdlib.Domain.recommended_domain_count () in
  let speedup = if j8.med > 0.0 then j1.med /. j8.med else 0.0 in
  Format.printf "fig4 --jobs 1: %.3f s, --jobs 8: %.3f s — %.2fx speedup on %d core(s)@." j1.med
    j8.med speedup cores;
  (j1, j8, speedup, cores)

(* ------------------------------------------------------------------ *)
(* fig4-modern: incremental vs from-scratch route maintenance          *)
(* ------------------------------------------------------------------ *)

(* The ROADMAP-scale state study: a ~75k-domain transit-stub topology,
   10^5 dense group ids, 2 * 10^5 membership events with a peer-link
   failure/restore every 2000 — and the same run twice, once with the
   maintained SPF cache repairing its trees in place on every link
   event, once recomputing every in-use tree from scratch (the retired
   pattern).  [spf_seconds]/[spf_bytes] isolate exactly the maintenance
   work, so the speedup and the GC-pressure ratio are direct.  Each
   mode is the median of [repeat_runs] after one warmup. *)

let fig4_modern_params =
  {
    Modern_experiment.default_params with
    Modern_experiment.domains = 75000;
    groups = 100_000;
    roots = 32;
    events = 200_000;
    link_every = 2000;
    trials = 1;
    jobs = 1;
  }

let fig4_modern_report () =
  Format.printf "@.=== fig4-modern: route maintenance under churn (75k domains, 100k groups) ===@.";
  let p = fig4_modern_params in
  let run mode () = Modern_experiment.run { p with Modern_experiment.mode } in
  let printed = run Modern_experiment.Incremental () in
  Format.printf "%a" Modern_experiment.pp_summary printed;
  Format.printf "topology: %d domains, %d links@." printed.Modern_experiment.r_domains
    printed.Modern_experiment.r_links;
  let measure name mode =
    (* warmup is the printed run for Incremental; Scratch warms itself *)
    let runs = ref [] in
    for _ = 1 to repeat_runs do
      let r, wall = timed (run mode) in
      runs := (r, wall) :: !runs
    done;
    let med f = (mstat_of (List.map f !runs)).med in
    let spf_s = med (fun (r, _) -> r.Modern_experiment.spf_seconds) in
    let spf_b = med (fun (r, _) -> r.Modern_experiment.spf_bytes) in
    let wall_s = med snd in
    let link_events =
      match !runs with (r, _) :: _ -> r.Modern_experiment.link_events | [] -> 0
    in
    let events_per_s = if spf_s > 0.0 then float_of_int link_events /. spf_s else 0.0 in
    Format.printf
      "%-12s %8.3f s maintaining routes (%.0f link events/s), %12.0f bytes allocated, %7.3f s \
       whole trial@."
      name spf_s events_per_s spf_b wall_s;
    (spf_s, spf_b, events_per_s, wall_s)
  in
  let inc = measure "incremental" Modern_experiment.Incremental in
  ignore (run Modern_experiment.Scratch ());
  let scr = measure "from-scratch" Modern_experiment.Scratch in
  let inc_s, inc_b, _, _ = inc and scr_s, scr_b, _, _ = scr in
  let speedup = if inc_s > 0.0 then scr_s /. inc_s else 0.0 in
  let bytes_ratio = if inc_b > 0.0 then scr_b /. inc_b else 0.0 in
  Format.printf "incremental repair: %.1fx faster, %.1fx fewer GC bytes than from-scratch@."
    speedup bytes_ratio;
  (printed, inc, scr, speedup, bytes_ratio)

(* ------------------------------------------------------------------ *)
(* Beacon measurement soak                                             *)
(* ------------------------------------------------------------------ *)

(* The active-measurement soak: 200 domains, 600 beacon sources, 25
   probes each, millions of data messages through the BGMP data path,
   under seeded loss and a mid-window uplink failure, with the trials
   fanned out over the Par pool (shard-merge discipline, so the matrix
   is byte-identical at any job count).  Probe throughput counts the
   engine-visible probe events — inter-domain data messages plus
   end-host deliveries — per wall-clock second.  The data-path profile
   rows come from a profiled single-trial rerun. *)

let beacon_soak_params =
  {
    Beacon_campaign.default_params with
    Beacon_campaign.domains = 200;
    per_domain = 2;
    probes = 25;
    trials = 4;
    loss = 0.05;
    churn = true;
  }

let data_path_buckets =
  [ "net.deliver.bgmp"; "bgmp.data.forward"; "bgmp.data.distribute"; "beacon.probe"; "beacon.harvest" ]

let beacon_soak () =
  Format.printf "@.=== Beacon soak: 200 domains, 4 trials, loss 0.05, churn (--jobs 4) ===@.";
  let p = beacon_soak_params in
  let r, wall_s = timed (fun () -> Beacon_campaign.run ~jobs:4 p) in
  let sum f = List.fold_left (fun acc t -> acc + f t) 0 r.Beacon_campaign.trials in
  let data_msgs = sum (fun t -> t.Beacon_campaign.r_data_msgs) in
  let delivered = sum (fun t -> t.Beacon_campaign.r_deliveries) in
  let probes = sum (fun t -> t.Beacon_campaign.r_probes_sent) in
  let events = data_msgs + delivered in
  let throughput = if wall_s > 0.0 then float_of_int events /. wall_s else 0.0 in
  let agg = r.Beacon_campaign.agg in
  Format.printf
    "%d probes -> %d inter-domain data messages, %d deliveries: %.2f s wall, %.0f probe \
     events/s@."
    probes data_msgs delivered wall_s throughput;
  Format.printf "%a@." Beacon_matrix.pp_summary agg;
  (* Where the data path spends its time: a profiled single-trial
     rerun, filtered to the probe/forward/distribute/harvest buckets. *)
  Prof.enable ();
  ignore (Beacon_campaign.run ~jobs:1 { p with Beacon_campaign.trials = 1 });
  let rows =
    List.filter
      (fun (row : Prof.row) ->
        match List.rev row.Prof.path with
        | leaf :: _ -> List.mem leaf data_path_buckets
        | [] -> false)
      (Prof.rows ())
  in
  Prof.disable ();
  List.iter
    (fun (row : Prof.row) ->
      Format.printf "%-44s %9d calls %9.3f ms self@."
        (String.concat ";" row.Prof.path)
        row.Prof.count (row.Prof.self_s *. 1e3))
    rows;
  (r, wall_s, throughput, rows)

(* ------------------------------------------------------------------ *)
(* Fault-scenario explorer                                             *)
(* ------------------------------------------------------------------ *)

(* Campaign throughput of the schedule explorer at --jobs 1 vs 8 —
   each trial is a full protocol-stack run judged by the invariant
   oracle, so schedules/s is the number that bounds how much fault
   space a CI budget can cover — plus the oracle's own price: the same
   empty-schedule run with the cadence invariant monitor off and on. *)

let explore_budget = 24

let explore_report () =
  Format.printf "@.=== Fault-scenario explorer (%d schedules, --jobs 1 vs 8) ===@." explore_budget;
  let ledger = Filename.temp_file "bench_explore" ".jsonl" in
  let campaign jobs =
    Explore.run_campaign
      {
        Explore.default_config with
        Explore.budget = explore_budget;
        seed = 7;
        jobs = Some jobs;
        ledger;
      }
  in
  let s0 = campaign 1 in
  (* the summary we report; doubles as the warmup *)
  let j1 = timed_median (fun () -> ignore (campaign 1)) in
  let j8 = timed_median (fun () -> ignore (campaign 8)) in
  (try Sys.remove ledger with Sys_error _ -> ());
  let tput (m : mstat) = if m.med > 0.0 then float_of_int explore_budget /. m.med else 0.0 in
  let speedup = if j8.med > 0.0 then j1.med /. j8.med else 0.0 in
  Format.printf
    "campaign: --jobs 1 %.3f s (%.1f schedules/s), --jobs 8 %.3f s (%.1f schedules/s) — %.2fx@."
    j1.med (tput j1) j8.med (tput j8) speedup;
  Format.printf
    "verdicts: %d pass, %d violation, %d non-convergence; %d shrink runs over %d \
     counterexamples@."
    s0.Explore.passed s0.Explore.violation s0.Explore.non_convergence s0.Explore.shrink_steps
    (List.length (Explore.counterexamples s0.Explore.entries));
  let orun monitor () = ignore (Oracle.run ~monitor ~seed:7 []) in
  orun true ();
  let on = timed_median (orun true) in
  let off = timed_median (orun false) in
  let pct = if off.med > 0.0 then (on.med -. off.med) /. off.med *. 100.0 else 0.0 in
  Format.printf "oracle (empty schedule): %.3f s plain, %.3f s monitored: %+.1f%%@." off.med
    on.med pct;
  (s0, j1, j8, speedup, (off.med, on.med, pct))

(* ------------------------------------------------------------------ *)
(* Invariant-check overhead and convergence                            *)
(* ------------------------------------------------------------------ *)

(* Wall-clock cost of running an experiment with the live invariant
   monitor off and on.  Figure 4 runs at full scale (the issue bounds
   its overhead); Figure 2 uses a scaled run — the O(claims^2) overlap
   sweep on the full 50x50 topology is exactly the cost the flag exists
   to keep out of the big regenerations. *)
let invariant_overhead () =
  Format.printf "@.=== Invariant-check overhead (off vs on) ===@.";
  let pair name run =
    let _, off_s = timed (fun () -> run false) in
    let violations, on_s = timed (fun () -> run true) in
    let pct = if off_s > 0.0 then (on_s -. off_s) /. off_s *. 100.0 else 0.0 in
    Format.printf "%-12s %7.3f s off, %7.3f s on: %+.1f%% (%d violations)@." name off_s on_s pct
      violations;
    (name, off_s, on_s, pct)
  in
  let fig4 check =
    let r =
      Tree_experiment.run { Tree_experiment.default_params with Tree_experiment.check_invariants = check }
    in
    r.Tree_experiment.invariant_violations
  in
  let fig2_scaled check =
    let r =
      Allocation_sim.run
        {
          Allocation_sim.default_params with
          Allocation_sim.tops = 10;
          children_per_top = 10;
          horizon = Sim_time.days 120.0;
          check_invariants = check;
        }
    in
    r.Allocation_sim.invariant_violations
  in
  let fig4_pair = pair "fig4" fig4 in
  let fig2_pair = pair "fig2-scaled" fig2_scaled in
  [ fig4_pair; fig2_pair ]

(* Convergence times from the engine watermarks: when the globally
   advertised prefix set last changed in the Figure-2 run, and when the
   Figure-3 walkthrough's join fabric went quiet. *)
let convergence_report () =
  Format.printf "@.=== Convergence ===@.";
  let fig2_day =
    match !fig2_result with Some r -> r.Allocation_sim.top_converged_day | None -> 0.0
  in
  let w = Scenario.figure3 () in
  let walkthrough_s =
    match Engine.converged_at w.Scenario.engine with
    | Some t -> Sim_time.to_seconds t
    | None -> 0.0
  in
  Format.printf "fig2 top-level prefixes converged on day %.1f@." fig2_day;
  Format.printf "walkthrough tree converged after %.3f s of simulated time@." walkthrough_s;
  [ ("fig2-top-converged-day", fig2_day); ("walkthrough-converged-s", walkthrough_s) ]

(* ------------------------------------------------------------------ *)
(* Machine-readable results                                            *)
(* ------------------------------------------------------------------ *)

let json_file = "BENCH_10.json"

let baseline_file = "BENCH_9.json"

(* Entries of a results file, scanned with Str (no JSON dependency in
   the image). *)
let scan_json_file file re =
  if not (Sys.file_exists file) then []
  else begin
    let ic = open_in file in
    let rec loop acc =
      match input_line ic with
      | line ->
          loop
            (try
               ignore (Str.search_forward re line 0);
               (Str.matched_group 1 line, float_of_string (Str.matched_group 2 line)) :: acc
             with Not_found -> acc)
      | exception End_of_file -> List.rev acc
    in
    let entries = loop [] in
    close_in ic;
    entries
  end

(* The trailing brace is left off the patterns: BENCH_6-format entries
   carry min/max/spread fields after the headline number. *)
let load_baseline () =
  scan_json_file baseline_file
    (Str.regexp "{\"name\": \"\\([^\"]+\\)\", \"ns_per_run\": \\([0-9.]+\\)")

let load_baseline_figures () =
  scan_json_file baseline_file
    (Str.regexp "{\"name\": \"\\([^\"]+\\)\", \"wall_clock_s\": \\([0-9.]+\\)")

let load_baseline_profile () =
  scan_json_file baseline_file
    (Str.regexp
       "{\"path\": \"\\([^\"]+\\)\", \"count\": [0-9]+, \"total_s\": [0-9.]+, \"self_s\": \
        [0-9.]+, \"self_bytes\": \\([0-9.]+\\)")

(* Allocation trajectory of the figure-4 pipeline vs the baseline
   file's profile rows: the PR's representation work (int-packed
   arenas, lazily allocated cache slots, maintained trees instead of
   per-trial recomputes) must show up as an allocated-bytes drop in
   the same profiled fig4 regeneration, not just feel faster.  Rows
   are matched by span path against the current run's profile. *)
let alloc_reduction_report prof_kernels =
  Format.printf "@.=== fig4 allocated bytes vs %s ===@." baseline_file;
  let baseline = load_baseline_profile () in
  let current =
    List.map
      (fun (r : Prof.row) -> (String.concat ";" r.Prof.path, r.Prof.self_bytes))
      prof_kernels
  in
  let rows =
    List.filter_map
      (fun (path, base) ->
        match List.assoc_opt path current with
        | Some cur when base > 0.0 ->
            let ratio = if cur > 0.0 then base /. cur else infinity in
            Format.printf "%-44s %12.0f -> %12.0f bytes (%.2fx)@." path base cur ratio;
            Some (path, base, cur, ratio)
        | _ -> None)
      baseline
  in
  let total_base = List.fold_left (fun acc (_, b, _, _) -> acc +. b) 0.0 rows in
  let total_cur = List.fold_left (fun acc (_, _, c, _) -> acc +. c) 0.0 rows in
  let total_ratio = if total_cur > 0.0 then total_base /. total_cur else 0.0 in
  if rows <> [] then
    Format.printf "%-44s %12.0f -> %12.0f bytes (%.2fx)@." "total" total_base total_cur
      total_ratio
  else Format.printf "no overlapping profile rows in %s; comparison skipped@." baseline_file;
  (rows, total_base, total_cur, total_ratio)

(* Wall-clock cost of the hierarchical profiler on the Figure-4
   experiment: disabled (the shipping default — every span is one flag
   test plus a tail call) and enabled (two clock and two allocation
   reads per span).  The disabled run is also compared against the
   baseline file's fig4 regeneration so the flag test itself stays
   visible in the trajectory; the enabled cost is reported, not
   bounded.  Returns the profiled run's span tree as the per-kernel
   breakdown. *)
let profiling_overhead () =
  Format.printf "@.=== Profiling overhead (disabled vs enabled) ===@.";
  let run () = ignore (Tree_experiment.run Tree_experiment.default_params) in
  let _, off_s = timed run in
  Prof.enable ();
  let _, on_s = timed run in
  let kernels = Prof.rows () in
  Prof.disable ();
  let enabled_pct = if off_s > 0.0 then (on_s -. off_s) /. off_s *. 100.0 else 0.0 in
  Format.printf "fig4         %7.3f s disabled, %7.3f s enabled: %+.1f%% enabled-path@." off_s
    on_s enabled_pct;
  let baseline_s = List.assoc_opt "fig4-regeneration" (load_baseline_figures ()) in
  (match baseline_s with
  | Some b when b > 0.0 ->
      Format.printf "fig4         disabled-path vs %s: %+.1f%% (%.3f -> %.3f s)@." baseline_file
        ((off_s -. b) /. b *. 100.0)
        b off_s
  | _ -> ());
  ((off_s, on_s, enabled_pct, baseline_s), kernels)

(* Wall-clock cost of the flight recorder on the Figure-4 experiment:
   disabled (one flag test at the engine dispatch point, the shipping
   default) and enabled fingerprint-only — every fired event and
   net-level delivery hashed into the rolling fingerprint, ring
   retention, no sink.  The issue bounds the enabled cost at 5%.  The
   enabled run's fingerprint is returned for the fingerprints
   section. *)
let recorder_overhead () =
  Format.printf "@.=== Flight-recorder overhead (disabled vs enabled) ===@.";
  let run () =
    Span.reset ();
    ignore (Tree_experiment.run Tree_experiment.default_params)
  in
  (* The 5%-bound comparison uses the session methodology — warmup then
     median of [repeat_runs] — for both paths; a single timed pair is
     too noisy to bound a hook this cheap. *)
  run ();
  let off = timed_median run in
  Recorder.enable ();
  run ();
  let on = timed_median run in
  let fp = Recorder.fingerprint () in
  Recorder.disable ();
  let pct = if off.med > 0.0 then (on.med -. off.med) /. off.med *. 100.0 else 0.0 in
  Format.printf "fig4         %7.3f s disabled, %7.3f s enabled: %+.1f%% enabled-path@." off.med
    on.med pct;
  Format.printf "fig4         enabled-run %a@." Recorder.pp_fingerprint fp;
  ((off.med, on.med, pct), fp)

(* Event-stream fingerprints of recorder-enabled reference runs,
   pinned into the results file: a PR that reorders or reshapes the
   event stream shows up as a hash change even when the printed
   figures agree.  [Span.reset] before each run keeps the minted span
   ids — part of the hash — a function of the run alone. *)
let fingerprint_report ~fig4_fp =
  Format.printf "@.=== Run fingerprints ===@.";
  let capture name f =
    Span.reset ();
    Recorder.enable ();
    f ();
    let fp = Recorder.fingerprint () in
    Recorder.disable ();
    (name, fp)
  in
  let fig2 =
    capture "fig2-scaled" (fun () ->
        ignore
          (Allocation_sim.run
             {
               Allocation_sim.default_params with
               Allocation_sim.tops = 10;
               children_per_top = 10;
               horizon = Sim_time.days 120.0;
             }))
  in
  let beacon =
    capture "beacon" (fun () ->
        ignore
          (Beacon_campaign.run ~jobs:4
             { Beacon_campaign.default_params with Beacon_campaign.trials = 2 }))
  in
  let all = [ fig2; ("fig4", fig4_fp); beacon ] in
  List.iter
    (fun (name, fp) -> Format.printf "%-12s %a@." name Recorder.pp_fingerprint fp)
    all;
  all

(* The instrumented hot kernels whose overhead vs the pre-metrics
   baseline the issue bounds at 5%. *)
let overhead_watchlist =
  [ "masc-bgmp/bfs-3326-node-graph"; "masc-bgmp/shared-tree-build-1000-members" ]

let overhead_report micro =
  let baseline = load_baseline () in
  List.filter_map
    (fun name ->
      match (List.assoc_opt name baseline, List.assoc_opt name micro) with
      | Some base, Some cur when base > 0.0 ->
          let pct = (cur -. base) /. base *. 100.0 in
          Format.printf "%-44s %+.1f%% vs %s (%.1f -> %.1f ns/run)@." name pct baseline_file
            base cur;
          Some (name, base, cur, pct)
      | _ -> None)
    overhead_watchlist

let write_json ~micro ~figures ~parallel ~overhead ~inv_overhead ~prof_overhead ~prof_kernels
    ~alloc ~fig4_modern ~rec_overhead ~fingerprints ~beacon ~explore ~convergence ~counters =
  let oc = open_out json_file in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out
    "  \"methodology\": {\"warmup_runs\": %d, \"repeat_runs\": %d, \"statistic\": \"median\"},\n"
    warmup_runs repeat_runs;
  out "  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, s) ->
      out
        "    {\"name\": %S, \"ns_per_run\": %.1f, \"min_ns\": %.1f, \"max_ns\": %.1f, \
         \"spread_pct\": %.1f}%s\n"
        name s.med s.mn s.mx s.spread_pct
        (if i = List.length micro - 1 then "" else ","))
    micro;
  out "  ],\n  \"figures\": [\n";
  List.iteri
    (fun i (name, s) ->
      out
        "    {\"name\": %S, \"wall_clock_s\": %.3f, \"min_s\": %.3f, \"max_s\": %.3f, \
         \"spread_pct\": %.1f}%s\n"
        name s.med s.mn s.mx s.spread_pct
        (if i = List.length figures - 1 then "" else ","))
    figures;
  out "  ],\n";
  let j1, j8, speedup, cores = parallel in
  out
    "  \"parallel\": {\"fig4_jobs1_s\": %.3f, \"fig4_jobs8_s\": %.3f, \"speedup\": %.2f, \
     \"cores\": %d},\n"
    j1.med j8.med speedup cores;
  out "  \"metrics_overhead\": [\n";
  List.iteri
    (fun i (name, base, cur, pct) ->
      out "    {\"name\": %S, \"baseline_ns\": %.1f, \"current_ns\": %.1f, \"overhead_pct\": %.1f}%s\n"
        name base cur pct
        (if i = List.length overhead - 1 then "" else ","))
    overhead;
  out "  ],\n  \"invariant_overhead\": [\n";
  List.iteri
    (fun i (name, off_s, on_s, pct) ->
      out "    {\"name\": %S, \"checks_off_s\": %.3f, \"checks_on_s\": %.3f, \"overhead_pct\": %.1f}%s\n"
        name off_s on_s pct
        (if i = List.length inv_overhead - 1 then "" else ","))
    inv_overhead;
  out "  ],\n";
  let off_s, on_s, enabled_pct, baseline_s = prof_overhead in
  out
    "  \"profiling_overhead\": {\"fig4_disabled_s\": %.3f, \"fig4_enabled_s\": %.3f, \
     \"enabled_pct\": %.1f, \"fig4_baseline_s\": %s, \"disabled_vs_baseline_pct\": %s},\n"
    off_s on_s enabled_pct
    (match baseline_s with Some b -> Printf.sprintf "%.3f" b | None -> "null")
    (match baseline_s with
    | Some b when b > 0.0 -> Printf.sprintf "%.1f" ((off_s -. b) /. b *. 100.0)
    | _ -> "null");
  out "  \"profile_kernels\": [\n";
  List.iteri
    (fun i (r : Prof.row) ->
      out
        "    {\"path\": %S, \"count\": %d, \"total_s\": %.6f, \"self_s\": %.6f, \"self_bytes\": \
         %.0f}%s\n"
        (String.concat ";" r.Prof.path)
        r.Prof.count r.Prof.total_s r.Prof.self_s r.Prof.self_bytes
        (if i = List.length prof_kernels - 1 then "" else ","))
    prof_kernels;
  out "  ],\n";
  let alloc_rows, alloc_base, alloc_cur, alloc_ratio = alloc in
  out "  \"alloc_reduction\": {\"baseline\": %S, \"rows\": [\n" baseline_file;
  List.iteri
    (fun i (path, base, cur, ratio) ->
      out
        "    {\"path\": %S, \"baseline_bytes\": %.0f, \"current_bytes\": %.0f, \"ratio\": %.2f}%s\n"
        path base cur ratio
        (if i = List.length alloc_rows - 1 then "" else ","))
    alloc_rows;
  out
    "  ], \"total_baseline_bytes\": %.0f, \"total_current_bytes\": %.0f, \"total_ratio\": %.2f},\n"
    alloc_base alloc_cur alloc_ratio;
  let mres, inc, scr, speedup, bytes_ratio = fig4_modern in
  let inc_s, inc_b, inc_eps, inc_w = inc and scr_s, scr_b, scr_eps, scr_w = scr in
  let mp = fig4_modern_params in
  out "  \"fig4_modern\": {\n";
  out
    "    \"domains\": %d, \"links\": %d, \"groups\": %d, \"roots\": %d, \"events\": %d, \
     \"link_every\": %d, \"trials\": %d, \"seed\": %d,\n"
    mres.Modern_experiment.r_domains mres.Modern_experiment.r_links mp.Modern_experiment.groups
    mp.Modern_experiment.roots mp.Modern_experiment.events mp.Modern_experiment.link_every
    mp.Modern_experiment.trials mp.Modern_experiment.seed;
  out
    "    \"joins\": %d, \"leaves\": %d, \"skipped\": %d, \"link_events\": %d, \"repairs\": %d, \
     \"touched\": %d,\n"
    mres.Modern_experiment.joins mres.Modern_experiment.leaves mres.Modern_experiment.skipped
    mres.Modern_experiment.link_events mres.Modern_experiment.repairs
    mres.Modern_experiment.touched;
  out "    \"state_vs_members\": [\n";
  let cks = mres.Modern_experiment.checkpoints in
  List.iteri
    (fun i (ck : Modern_experiment.checkpoint) ->
      out
        "      {\"events\": %d, \"members\": %.1f, \"entries\": %.1f, \"max_router\": %.1f, \
         \"stateful_routers\": %.1f, \"grib_entries\": %.1f}%s\n"
        ck.Modern_experiment.ck_events ck.Modern_experiment.ck_members
        ck.Modern_experiment.ck_entries ck.Modern_experiment.ck_max_router
        ck.Modern_experiment.ck_stateful ck.Modern_experiment.ck_grib
        (if i = List.length cks - 1 then "" else ","))
    cks;
  out "    ],\n";
  out
    "    \"incremental\": {\"spf_s\": %.6f, \"spf_bytes\": %.0f, \"link_events_per_s\": %.0f, \
     \"wall_s\": %.3f},\n"
    inc_s inc_b inc_eps inc_w;
  out
    "    \"scratch\": {\"spf_s\": %.6f, \"spf_bytes\": %.0f, \"link_events_per_s\": %.0f, \
     \"wall_s\": %.3f},\n"
    scr_s scr_b scr_eps scr_w;
  out "    \"speedup\": %.2f, \"bytes_ratio\": %.2f\n  },\n" speedup bytes_ratio;
  let rec_off_s, rec_on_s, rec_pct = rec_overhead in
  out
    "  \"recorder_overhead\": {\"fig4_disabled_s\": %.3f, \"fig4_enabled_s\": %.3f, \
     \"enabled_pct\": %.1f},\n"
    rec_off_s rec_on_s rec_pct;
  out "  \"fingerprints\": [\n";
  List.iteri
    (fun i (name, (fp : Recorder.fingerprint)) ->
      out "    {\"name\": %S, \"hash\": \"%016Lx\", \"records\": %d}%s\n" name
        fp.Recorder.fpr_hash fp.Recorder.fpr_records
        (if i = List.length fingerprints - 1 then "" else ","))
    fingerprints;
  out "  ],\n";
  let soak_r, soak_wall, soak_tput, soak_rows = beacon in
  let soak_sum f = List.fold_left (fun acc t -> acc + f t) 0 soak_r.Beacon_campaign.trials in
  let agg = soak_r.Beacon_campaign.agg in
  let bp = beacon_soak_params in
  out "  \"beacon_soak\": {\n";
  out
    "    \"domains\": %d, \"per_domain\": %d, \"probes_per_source\": %d, \"trials\": %d, \
     \"loss\": %.2f, \"churn\": true,\n"
    bp.Beacon_campaign.domains bp.Beacon_campaign.per_domain bp.Beacon_campaign.probes
    bp.Beacon_campaign.trials bp.Beacon_campaign.loss;
  out
    "    \"probes_sent\": %d, \"bgmp_data_msgs_sent\": %d, \"expected_deliveries\": %d, \
     \"delivered\": %d, \"lost\": %d, \"duplicates\": %d,\n"
    (soak_sum (fun t -> t.Beacon_campaign.r_probes_sent))
    (soak_sum (fun t -> t.Beacon_campaign.r_data_msgs))
    agg.Beacon_matrix.s_sent agg.Beacon_matrix.s_got agg.Beacon_matrix.s_lost
    (soak_sum (fun t -> t.Beacon_campaign.r_duplicates));
  out "    \"wall_s\": %.3f, \"probe_events_per_s\": %.0f,\n" soak_wall soak_tput;
  out
    "    \"matrix\": {\"pairs\": %d, \"loss_fraction\": %.4f, \"unreachable\": %d, \
     \"asymmetric\": %d, \"complete\": %b, \"latency_mean_s\": %.6f, \"latency_max_s\": %.6f, \
     \"stretch_mean\": %.4f, \"stretch_max\": %.4f},\n"
    agg.Beacon_matrix.s_pairs agg.Beacon_matrix.s_loss agg.Beacon_matrix.s_unreachable
    agg.Beacon_matrix.s_asymmetric agg.Beacon_matrix.s_complete agg.Beacon_matrix.s_lat_mean
    agg.Beacon_matrix.s_lat_max agg.Beacon_matrix.s_stretch_mean
    agg.Beacon_matrix.s_stretch_max;
  out "    \"data_path_profile\": [\n";
  List.iteri
    (fun i (r : Prof.row) ->
      out
        "      {\"path\": %S, \"count\": %d, \"total_s\": %.6f, \"self_s\": %.6f, \
         \"self_bytes\": %.0f}%s\n"
        (String.concat ";" r.Prof.path)
        r.Prof.count r.Prof.total_s r.Prof.self_s r.Prof.self_bytes
        (if i = List.length soak_rows - 1 then "" else ","))
    soak_rows;
  out "    ]\n  },\n";
  let xs, xj1, xj8, xspeedup, (xoff, xon, xpct) = explore in
  let xtput (m : mstat) = if m.med > 0.0 then float_of_int explore_budget /. m.med else 0.0 in
  out "  \"explore\": {\n";
  out
    "    \"budget\": %d, \"pass\": %d, \"violation\": %d, \"non_convergence\": %d, \
     \"counterexamples\": %d, \"shrink_runs\": %d,\n"
    explore_budget xs.Explore.passed xs.Explore.violation xs.Explore.non_convergence
    (List.length (Explore.counterexamples xs.Explore.entries))
    xs.Explore.shrink_steps;
  out
    "    \"jobs1_s\": %.3f, \"jobs8_s\": %.3f, \"speedup\": %.2f, \"schedules_per_s_jobs1\": \
     %.2f, \"schedules_per_s_jobs8\": %.2f,\n"
    xj1.med xj8.med xspeedup (xtput xj1) (xtput xj8);
  out
    "    \"oracle_plain_s\": %.3f, \"oracle_monitored_s\": %.3f, \"monitor_overhead_pct\": \
     %.1f\n  },\n"
    xoff xon xpct;
  out "  \"convergence\": [\n";
  List.iteri
    (fun i (name, v) ->
      out "    {\"name\": %S, \"value\": %.3f}%s\n" name v
        (if i = List.length convergence - 1 then "" else ","))
    convergence;
  out "  ],\n  \"counters\": [\n";
  List.iteri
    (fun i (name, v) ->
      out "    {\"name\": %S, \"value\": %d}%s\n" name v
        (if i = List.length counters - 1 then "" else ","))
    counters;
  out "  ]\n}\n";
  close_out oc;
  Format.printf "@.wrote %s@." json_file

(* ------------------------------------------------------------------ *)
(* Smoke mode                                                          *)
(* ------------------------------------------------------------------ *)

(* ---- perf-regression gate ---------------------------------------- *)

let budget_file = "bench/perf_budget.json"

(* Budget headroom over a healthy median: generous enough that CI-host
   jitter never trips the gate, tight enough that a 2x slowdown does. *)
let budget_headroom = 2.5

(* CI-sized figure runs: a scaled fig2 (~35 ms), a small fig4
   (~150 ms) and a small fig4-modern churn run, each exercising the
   real experiment code end-to-end. *)
let smoke_figures =
  [
    ( "fig2-smoke",
      fun () ->
        ignore
          (Allocation_sim.run
             {
               Allocation_sim.default_params with
               Allocation_sim.tops = 10;
               children_per_top = 10;
               horizon = Sim_time.days 120.0;
             }) );
    ( "fig4-smoke",
      fun () ->
        ignore
          (Tree_experiment.run
             {
               Tree_experiment.default_params with
               Tree_experiment.nodes = 1000;
               trials = 5;
             }) );
    ( "fig4-modern-smoke",
      fun () ->
        ignore
          (Modern_experiment.run
             { Modern_experiment.default_params with Modern_experiment.jobs = 1 }) );
  ]

(* Each budget line carries a wall-clock budget and an allocated-bytes
   budget; both are gated.  The bytes column catches representation
   regressions (an arena quietly reverting to per-entry boxing) that
   hide inside wall-clock jitter on a busy CI host. *)
let load_budgets () =
  scan_json_file budget_file
    (Str.regexp "{\"name\": \"\\([^\"]+\\)\", \"budget_s\": \\([0-9.]+\\)")

let load_byte_budgets () =
  scan_json_file budget_file
    (Str.regexp
       "{\"name\": \"\\([^\"]+\\)\", \"budget_s\": [0-9.]+, \"measured_s\": [0-9.]+, \
        \"budget_bytes\": \\([0-9.]+\\)")

let write_budgets measured =
  let oc = open_out budget_file in
  Printf.fprintf oc "{\n  \"headroom\": %.1f,\n  \"budgets\": [\n" budget_headroom;
  List.iteri
    (fun i (name, med, bytes) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"budget_s\": %.3f, \"measured_s\": %.3f, \"budget_bytes\": %.0f, \
         \"measured_bytes\": %.0f}%s\n"
        name (med *. budget_headroom) med
        (bytes *. budget_headroom)
        bytes
        (if i = List.length measured - 1 then "" else ","))
    measured;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Format.printf "bench smoke: wrote %s (budgets = %.1fx measured medians)@." budget_file
    budget_headroom

(* Gate the scaled figure medians — wall-clock AND allocated bytes —
   against the checked-in budgets.  Missing budget file (e.g. running
   outside the repo root) warns and skips rather than failing — the
   gate is only meaningful where bench/perf_budget.json is visible. *)
let perf_gate () =
  let write_budget = Array.exists (( = ) "--write-budget") Sys.argv in
  let measured =
    List.map
      (fun (name, f) ->
        for _ = 1 to warmup_runs do
          f ()
        done;
        let bytes = ref [] in
        let timed_counting () =
          let b0 = Gc.allocated_bytes () in
          f ();
          bytes := (Gc.allocated_bytes () -. b0) :: !bytes
        in
        let s = timed_median timed_counting in
        let b = mstat_of !bytes in
        Format.printf
          "bench smoke: %-16s %.3f s median  [%.3f .. %.3f, %.1f%% spread], %.0f bytes median@."
          name s.med s.mn s.mx s.spread_pct b.med;
        (name, s.med, b.med))
      smoke_figures
  in
  if write_budget then write_budgets measured
  else
    match load_budgets () with
    | [] ->
        Format.printf "bench smoke: %s not found; perf gate skipped (create with --write-budget)@."
          budget_file
    | budgets ->
        let byte_budgets = load_byte_budgets () in
        let failed = ref false in
        List.iter
          (fun (name, med, med_bytes) ->
            (match List.assoc_opt name budgets with
            | None -> Format.printf "bench smoke: no budget for %s; skipped@." name
            | Some budget ->
                let verdict = if med > budget then "FAIL" else "ok" in
                Format.printf "bench smoke: %-16s %.3f s vs budget %.3f s — %s@." name med budget
                  verdict;
                if med > budget then failed := true);
            match List.assoc_opt name byte_budgets with
            | None -> ()
            | Some budget ->
                let verdict = if med_bytes > budget then "FAIL" else "ok" in
                Format.printf "bench smoke: %-16s %.0f bytes vs budget %.0f bytes — %s@." name
                  med_bytes budget verdict;
                if med_bytes > budget then failed := true)
          measured;
        if !failed then begin
          Format.eprintf
            "bench smoke: perf budget exceeded (refresh %s with --write-budget after a \
             deliberate change)@."
            budget_file;
          exit 1
        end

(* Beacon measurement canary for `--smoke`: a small lossless campaign
   must move data across the fabric (bgmp.data_msgs_sent > 0), produce
   a fully reachable COMPLETE matrix, and snapshot byte-identically at
   --jobs 1/4/8.  Writes beacon_matrix.jsonl (CI uploads it as an
   artifact). *)
let smoke_beacon () =
  let fail fmt = Format.kasprintf (fun m -> Format.eprintf "bench smoke: %s@." m; exit 1) fmt in
  let p = { Beacon_campaign.default_params with Beacon_campaign.trials = 4 } in
  let run jobs = Beacon_campaign.run ~jobs p in
  let r1, wall_s = timed (fun () -> run 1) in
  let data_msgs =
    List.fold_left
      (fun acc t -> acc + t.Beacon_campaign.r_data_msgs)
      0 r1.Beacon_campaign.trials
  in
  let agg = r1.Beacon_campaign.agg in
  Format.printf "bench smoke: beacon %d pairs, %d probes, %d data messages, %.2f s@."
    agg.Beacon_matrix.s_pairs agg.Beacon_matrix.s_sent data_msgs wall_s;
  if data_msgs = 0 then fail "beacon: no data crossed the fabric (bgmp.data_msgs_sent = 0)";
  if agg.Beacon_matrix.s_unreachable > 0 then
    fail "beacon: %d unreachable pairs at loss 0" agg.Beacon_matrix.s_unreachable;
  if not agg.Beacon_matrix.s_complete then fail "beacon: matrix incomplete at loss 0";
  let show (r : Beacon_campaign.result) =
    Format.asprintf "%a%a" Beacon_matrix.pp_cells r.Beacon_campaign.cells
      Beacon_matrix.pp_summary r.Beacon_campaign.agg
  in
  let want = show r1 in
  List.iter
    (fun jobs -> if show (run jobs) <> want then fail "beacon: matrix differs at --jobs %d" jobs)
    [ 4; 8 ];
  Beacon_matrix.write_jsonl
    ~meta:
      [
        ("trials", float_of_int p.Beacon_campaign.trials);
        ("loss", p.Beacon_campaign.loss);
        ("domains", float_of_int p.Beacon_campaign.domains);
      ]
    "beacon_matrix.jsonl" r1.Beacon_campaign.cells;
  Format.printf
    "bench smoke: beacon matrix byte-identical at --jobs 1/4/8; wrote beacon_matrix.jsonl@."

(* Explorer canary for `--smoke`: a seeded 25-schedule campaign over
   the default 2x2 arena must find the partition canary (both top-level
   MASC nodes first-fit-claiming 224.0.0.0/24 blind to each other),
   shrink it to a single fault, and write a repro recording that names
   the violated invariant and its blamed trace id; the ledger must be
   byte-identical at --jobs 1/4/8.  explore_ledger.jsonl and
   explore_repro/ land in the working directory (CI uploads them as
   artifacts). *)
let smoke_explore () =
  let fail fmt = Format.kasprintf (fun m -> Format.eprintf "bench smoke: %s@." m; exit 1) fmt in
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let mem needle hay =
    try
      ignore (Str.search_forward (Str.regexp_string needle) hay 0);
      true
    with Not_found -> false
  in
  let run jobs ledger repro_dir =
    Explore.run_campaign
      {
        Explore.default_config with
        Explore.budget = 25;
        seed = 7;
        jobs = Some jobs;
        ledger;
        repro_dir;
      }
  in
  let s, wall_s = timed (fun () -> run 1 "explore_ledger.jsonl" (Some "explore_repro")) in
  Format.printf
    "bench smoke: explore %d schedules, %d violations, %d non-convergence, %d shrink runs, %.2f \
     s@."
    s.Explore.total s.Explore.violation s.Explore.non_convergence s.Explore.shrink_steps wall_s;
  if s.Explore.violation = 0 then fail "explore: the seeded partition canary was not found";
  (match Explore.counterexamples s.Explore.entries with
  | [] -> fail "explore: violations recorded but no counterexample ranked"
  | (e : Ledger.entry) :: _ -> (
      if not (List.mem "masc-sibling-overlap" e.Ledger.invariants) then
        fail "explore: smallest counterexample does not blame masc-sibling-overlap";
      if e.Ledger.min_faults <> Some 1 then
        fail "explore: canary did not shrink to a single fault (min_faults = %s)"
          (match e.Ledger.min_faults with Some n -> string_of_int n | None -> "none");
      match e.Ledger.repro_recording with
      | Some p when Sys.file_exists p ->
          let recording = read_file p in
          if not (mem "explore.violation" recording && mem "masc-sibling-overlap" recording) then
            fail "explore: repro recording does not name the violated invariant";
          if not (mem "claim:" recording) then
            fail "explore: repro recording carries no blamed trace id"
      | _ -> fail "explore: no repro recording written for the smallest counterexample"));
  let want = read_file "explore_ledger.jsonl" in
  List.iter
    (fun jobs ->
      let ledger = Printf.sprintf "explore_ledger_j%d.jsonl" jobs in
      ignore (run jobs ledger (Some "explore_repro"));
      let got = read_file ledger in
      Sys.remove ledger;
      if got <> want then fail "explore: ledger differs at --jobs %d" jobs)
    [ 4; 8 ];
  Format.printf
    "bench smoke: explore ledger byte-identical at --jobs 1/4/8; wrote explore_ledger.jsonl and \
     explore_repro/@."

(* Cross-jobs fingerprint canary for `--smoke`: a scaled fig2, a small
   fig4 and a lossless beacon campaign must hash to the same
   event-stream fingerprint at --jobs 1/4/8 — shard records fold back
   in task order and every Par task mints spans from a fresh minter, so
   the worker count must be unobservable in the recorder too.  The
   fig4 --jobs 1 recording lands in recording.jsonl (CI uploads it as
   an artifact). *)
let smoke_fingerprint () =
  let fail fmt = Format.kasprintf (fun m -> Format.eprintf "bench smoke: %s@." m; exit 1) fmt in
  let fp_of ?sink jobs f =
    Span.reset ();
    Recorder.enable ?sink ();
    Par.set_jobs jobs;
    f jobs;
    Par.set_jobs 1;
    let s = Format.asprintf "%a" Recorder.pp_fingerprint (Recorder.fingerprint ()) in
    Recorder.disable ();
    s
  in
  let cases =
    [
      ( "fig2-scaled",
        None,
        fun _jobs ->
          ignore
            (Allocation_sim.run
               {
                 Allocation_sim.default_params with
                 Allocation_sim.tops = 10;
                 children_per_top = 10;
                 horizon = Sim_time.days 120.0;
               }) );
      ( "fig4-small",
        Some "recording.jsonl",
        fun jobs ->
          ignore
            (Tree_experiment.run
               {
                 Tree_experiment.default_params with
                 Tree_experiment.nodes = 1000;
                 trials = 5;
                 jobs;
               }) );
      ( "beacon",
        None,
        fun jobs ->
          ignore
            (Beacon_campaign.run ~jobs
               { Beacon_campaign.default_params with Beacon_campaign.trials = 4 }) );
    ]
  in
  List.iter
    (fun (name, sink, f) ->
      let want = fp_of ?sink 1 f in
      List.iter
        (fun jobs ->
          if fp_of jobs f <> want then fail "%s: fingerprint differs at --jobs %d" name jobs)
        [ 4; 8 ];
      Format.printf "bench smoke: %s fingerprint identical at --jobs 1/4/8@." name)
    cases;
  Format.printf "bench smoke: wrote recording.jsonl (fig4-small, --jobs 1)@."

(* `bench/main.exe --smoke`: a CI-sized canary on the transport hot
   path.  Runs the Figure-1 stack end-to-end — every inter-domain
   message crossing the Net substrate — asserts the expected
   deliveries, and fails if the run blows a generous wall-clock budget,
   catching pathological slowdowns in the channel layer without the
   full Bechamel session.  The beacon canary then runs a lossless
   measurement campaign and checks the matrix is complete and
   jobs-invariant, the fingerprint canary asserts the flight recorder's
   event-stream hash is byte-identical at --jobs 1/4/8, the explorer
   canary runs a seeded 25-schedule campaign that must find, shrink and
   reproduce the partition canary with a jobs-invariant ledger, and the
   perf gate above compares scaled fig2/fig4 medians against
   bench/perf_budget.json.  With `--profile`, the
   canary run is profiled and sampled: profile.jsonl and
   timeseries.jsonl land in the working directory (CI uploads them as
   artifacts). *)
let run_smoke () =
  let profile = Array.exists (( = ) "--profile") Sys.argv in
  if profile then Prof.enable ();
  let ts =
    if profile then Some (Timeseries.create ~sink:(Timeseries.Jsonl "timeseries.jsonl") ())
    else None
  in
  let budget_s = 60.0 in
  let (deliveries, transported), wall_s =
    timed (fun () ->
        let s = Scenario.figure1 () in
        Option.iter
          (fun ts -> Internet.enable_sampling ~every:(Sim_time.minutes 1.0) s.Scenario.inet ts)
          ts;
        let topo = Internet.topo s.Scenario.inet in
        let e = Option.get (Topo.find_by_name topo "E") in
        let got = Scenario.send s ~source:(Host_ref.make e 1) in
        let net = Internet.net s.Scenario.inet in
        let delivered =
          List.fold_left
            (fun acc p -> acc + Net.delivered net ~protocol:p)
            0 [ "masc"; "bgp"; "bgmp" ]
        in
        (List.length got, delivered))
  in
  if profile then begin
    Prof.write_jsonl "profile.jsonl";
    Prof.disable ();
    Option.iter Timeseries.close ts;
    Format.printf "bench smoke: wrote profile.jsonl and timeseries.jsonl@."
  end;
  Format.printf "bench smoke: %d deliveries, %d transport messages, %.2f s wall@." deliveries
    transported wall_s;
  let fail fmt = Format.kasprintf (fun m -> Format.eprintf "bench smoke: %s@." m; exit 1) fmt in
  if deliveries <> 4 then fail "expected 4 member deliveries, got %d" deliveries;
  if transported = 0 then fail "no messages crossed the transport";
  if wall_s > budget_s then fail "took %.1f s (budget %.0f s)" wall_s budget_s;
  (* The perf gate runs before the beacon canary: the canary's --jobs 8
     pass spawns pool domains, and the multi-domain runtime's GC makes
     the single-threaded figure medians incomparable to budgets
     measured on a one-domain process. *)
  perf_gate ();
  smoke_beacon ();
  smoke_fingerprint ();
  smoke_explore ()

let () =
  if Array.exists (( = ) "--smoke") Sys.argv then begin
    run_smoke ();
    exit 0
  end;
  Format.printf "=== Micro-benchmarks (Bechamel; median of %d sessions after %d warmup) ===@."
    repeat_runs warmup_runs;
  let micro = run_benchmarks () in
  Format.printf "@.=== Instrumentation overhead vs baseline ===@.";
  let overhead = overhead_report (List.map (fun (name, s) -> (name, s.med)) micro) in
  (* Count only what the single printed regenerations themselves do;
     the timed repeats below run after the snapshot. *)
  M.reset M.default;
  run_fig2 ();
  run_fig4 ();
  let counters =
    List.filter_map
      (fun (name, v) -> match v with M.Counter_v c -> Some (name, c) | _ -> None)
      (M.snapshot M.default)
  in
  Format.printf "@.=== Figure wall-clock (median of %d; printed run above = warmup) ===@."
    repeat_runs;
  let fig2_stat =
    figure_stat "fig2-regeneration" (fun () ->
        ignore (Allocation_sim.run Allocation_sim.default_params))
  in
  let fig4_stat =
    figure_stat "fig4-regeneration" (fun () ->
        ignore (Tree_experiment.run Tree_experiment.default_params))
  in
  let inv_overhead = invariant_overhead () in
  let prof_overhead, prof_kernels = profiling_overhead () in
  let alloc = alloc_reduction_report prof_kernels in
  let fig4_modern = fig4_modern_report () in
  let rec_overhead, fig4_fp = recorder_overhead () in
  let fingerprints = fingerprint_report ~fig4_fp in
  let parallel = parallel_report () in
  let beacon = beacon_soak () in
  let explore = explore_report () in
  let convergence = convergence_report () in
  write_json ~micro
    ~figures:[ fig2_stat; fig4_stat ]
    ~parallel ~overhead ~inv_overhead ~prof_overhead ~prof_kernels ~alloc ~fig4_modern
    ~rec_overhead ~fingerprints ~beacon ~explore ~convergence ~counters
