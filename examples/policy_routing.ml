(* Multicast policy through selective propagation of group routes (§4.2):
   "if border router X does not advertise group route R to neighbor Y
   then Y will not be aware that it can use X to reach the root domain
   for the address range represented by R."

   Provider A originates a group range and filters its advertisement
   toward customer C.  Members behind B can join the tree; C cannot even
   route a join for the group — policy enforced purely by route
   propagation, exactly as for unicast BGP.

   Run with: dune exec examples/policy_routing.exe *)

let () =
  let topo = Topo.create () in
  let a = Topo.add_domain topo ~name:"A" ~kind:Domain.Backbone in
  let b = Topo.add_domain topo ~name:"B" ~kind:Domain.Regional in
  let c = Topo.add_domain topo ~name:"C" ~kind:Domain.Regional in
  let fb = Topo.add_domain topo ~name:"F" ~kind:Domain.Stub in
  let gc = Topo.add_domain topo ~name:"G" ~kind:Domain.Stub in
  Topo.add_link topo a b Topo.Provider_customer;
  Topo.add_link topo a c Topo.Provider_customer;
  Topo.add_link topo b fb Topo.Provider_customer;
  Topo.add_link topo c gc Topo.Provider_customer;

  let engine = Engine.create () in
  let bgp = Bgp_network.create ~engine ~topo () in
  let range = Prefix.of_string "224.10.0.0/16" in
  let group = Ipv4.of_string "224.10.0.1" in

  (* Policy: A does not advertise this range to C. *)
  Speaker.set_export_filter (Bgp_network.speaker bgp a) (fun ~dst (r : Route.t) ->
      not (dst = c && Prefix.subsumes range r.Route.prefix));
  Bgp_network.originate bgp a range;
  Bgp_network.converge bgp;

  Format.printf "Group route %a originated by A, filtered toward C:@." Prefix.pp range;
  List.iter
    (fun (d : Domain.t) ->
      Format.printf "  %s: %s@." d.Domain.name
        (match Speaker.lookup (Bgp_network.speaker bgp d.Domain.id) group with
        | Some r -> Format.asprintf "route via origin %d, %d AS hops" r.Route.origin
                      (Route.path_length r)
        | None -> "NO ROUTE (policy-filtered)"))
    (Topo.domains topo);

  (* BGMP on top: joins from F succeed; joins behind the filter at G/C
     have no route toward the root and go nowhere. *)
  let route_to_root d _g =
    match Speaker.lookup (Bgp_network.speaker bgp d) group with
    | None -> Bgmp_fabric.Unroutable
    | Some r -> (
        match Route.next_hop r with
        | None -> Bgmp_fabric.Root_here
        | Some nh -> Bgmp_fabric.Via nh)
  in
  let fabric = Bgmp_fabric.create ~engine ~topo ~route_to_root () in
  Bgmp_fabric.host_join fabric ~host:(Host_ref.make fb 0) ~group;
  Bgmp_fabric.host_join fabric ~host:(Host_ref.make gc 0) ~group;
  Engine.run_until_idle engine;
  let name_of d = (Topo.domain topo d).Domain.name in
  Format.printf "@.Shared tree spans: %s@."
    (String.concat ", " (List.map name_of (Bgmp_fabric.tree_domains fabric ~group)));

  let p = Bgmp_fabric.send fabric ~source:(Host_ref.make a 0) ~group in
  Engine.run_until_idle engine;
  Format.printf "Packet from a host in A reaches:@.";
  List.iter
    (fun (h, hops) ->
      Format.printf "  %s (%d hops)@." (name_of h.Host_ref.host_domain) hops)
    (Bgmp_fabric.deliveries fabric ~payload:p);
  Format.printf
    "@.G joined but received nothing: C has no group route, so the join had@.\
     nowhere to go — the provider's resources are protected by the same@.\
     mechanism that expresses unicast routing policy.@."
