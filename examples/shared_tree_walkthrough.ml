(* The Figure-3 walkthrough: bidirectional shared-tree construction
   (Figure 3a) and source-specific branch establishment (Figure 3b).

   Uses the BGMP fabric directly with static group routes so the
   scenario matches the paper exactly: group 224.0.128.1 rooted at
   domain B; members in B, C, D, F and H; DVMRP inside every domain
   (strict RPF, flood-and-prune).

   Run with: dune exec examples/shared_tree_walkthrough.exe *)

let group = Ipv4.of_string "224.0.128.1"

let () =
  let topo = Gen.figure3 () in
  let engine = Engine.create () in
  let dom name = Option.get (Topo.find_by_name topo name) in
  let name_of d = (Topo.domain topo d).Domain.name in
  let b = dom "B" in
  let to_root = Spf.bfs topo b in
  let route_to_root d _g =
    if d = b then Bgmp_fabric.Root_here
    else
      match Spf.next_hop_toward topo to_root d with
      | Some nh -> Bgmp_fabric.Via nh
      | None -> Bgmp_fabric.Unroutable
  in
  let trace = Trace.create () in
  let fabric = Bgmp_fabric.create ~engine ~topo ~trace ~route_to_root () in

  Format.printf "=== Figure 3(a): building the bidirectional shared tree ===@.";
  Format.printf "Group %a is rooted at domain B (its address falls in B's MASC range).@.@."
    Ipv4.pp group;
  List.iter
    (fun n ->
      Bgmp_fabric.host_join fabric ~host:(Host_ref.make (dom n) 0) ~group;
      Engine.run_until_idle engine;
      Format.printf "after %s joins, tree spans: %s@." n
        (String.concat ", " (List.map name_of (Bgmp_fabric.tree_domains fabric ~group))))
    [ "B"; "C"; "D"; "F"; "H" ];

  (* Dump the (star,G) entries: parent/child targets per border router,
     as in the paper's description of C1, A2, A3, B1. *)
  Format.printf "@.(*,G) forwarding entries at every border router on the tree:@.";
  List.iter
    (fun (d : Domain.t) ->
      List.iter
        (fun r ->
          match Bgmp_router.star_entry r group with
          | None -> ()
          | Some e ->
              let tgt = Format.asprintf "%a" Bgmp_router.pp_target in
              Format.printf "  %-3s parent=%-8s children=[%s]@." (Bgmp_router.name r)
                (match e.Bgmp_router.parent with Some t -> tgt t | None -> "-")
                (String.concat " " (List.map tgt e.Bgmp_router.children)))
        (Bgmp_fabric.routers_of fabric d.Domain.id))
    (Topo.domains topo);

  (* The fabric stamped every join with a causal span; render the
     group's chain the way the [trace] subcommand would.  With static
     group routes there is no claim to descend from, so the chain roots
     at the group itself; in the integrated stack the same chain starts
     at the MASC claim that placed the prefix. *)
  Format.printf "@.Causal chain of the tree construction (trace subcommand rendering):@.";
  let entries = Trace.entries trace in
  List.iter
    (fun id -> Trace_report.pp_chain_for Format.std_formatter entries ~id)
    (Trace_report.chain_ids entries);
  Format.printf "@.Join latencies:@.%a" Trace_report.pp_latencies entries;

  (* Data from a host in E (no members there): forwarded toward the root
     until it meets the tree, then distributed bidirectionally. *)
  let p = Bgmp_fabric.send fabric ~source:(Host_ref.make (dom "E") 7) ~group in
  Engine.run_until_idle engine;
  Format.printf "@.Host in E sends packet #%d:@." p;
  List.iter
    (fun (h, hops) ->
      Format.printf "  %s receives after %d inter-domain hops@." (name_of h.Host_ref.host_domain)
        hops)
    (Bgmp_fabric.deliveries fabric ~payload:p);

  Format.printf "@.=== Figure 3(b): a source-specific branch from F ===@.";
  Format.printf
    "Source S in domain D.  F's shortest path to D runs through A (via border@.\
     router F2), but the shared tree delivers via B (router F1).  F's DVMRP@.\
     forces encapsulation F1->F2 until BGMP grafts an (S,G) branch.@.@.";
  let src = Host_ref.make (dom "D") 3 in
  let show_packet tag p =
    Format.printf "%s@." tag;
    List.iter
      (fun (h, hops) ->
        Format.printf "  %s after %d hops@." (name_of h.Host_ref.host_domain) hops)
      (Bgmp_fabric.deliveries fabric ~payload:p)
  in
  let p1 = Bgmp_fabric.send fabric ~source:src ~group in
  Engine.run_until_idle engine;
  show_packet "First packet from S (shared tree; encapsulation inside F):" p1;
  Format.printf "  encapsulations recorded in F so far: %d@."
    (Migp.encapsulations (Bgmp_fabric.migp_of fabric (dom "F")));
  let p2 = Bgmp_fabric.send fabric ~source:src ~group in
  Engine.run_until_idle engine;
  show_packet "Second packet (the (S,G) branch via A-F is live; F is 2 hops from S):" p2;

  (* Show the (S,G) state the branch created. *)
  Format.printf "@.(S,G) entries after the branch:@.";
  List.iter
    (fun (d : Domain.t) ->
      List.iter
        (fun r ->
          match Bgmp_router.sg_entry r src group with
          | None -> ()
          | Some v ->
              let tgt = Format.asprintf "%a" Bgmp_router.pp_target in
              Format.printf "  %-3s rpf=%-8s targets=[%s]@." (Bgmp_router.name r)
                (match v.Bgmp_router.view_rpf with Some t -> tgt t | None -> "-")
                (String.concat " " (List.map tgt v.Bgmp_router.view_targets)))
        (Bgmp_fabric.routers_of fabric d.Domain.id))
    (Topo.domains topo);
  Format.printf "@.Control messages: %d, data messages: %d, duplicates: %d@."
    (Bgmp_fabric.control_messages fabric)
    (Bgmp_fabric.data_messages fabric)
    (Bgmp_fabric.duplicate_deliveries fabric);

  (* Everything above was also recorded by the process-wide metrics
     registry; the snapshot is the machine-readable view of the run. *)
  Format.printf "@.Metrics snapshot of the walkthrough:@.%a" Metrics.pp
    (Metrics.snapshot Metrics.default)
